package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PureMarker annotates a function as side-effect-free: everything on a
// replay-fingerprint path must be, or a cache hit could return different
// bytes than the computation it stands in for. The comment form, placed in
// the function's doc comment, is
//
//	//gicnet:pure [allow=write:<name>[,write:<name>...]]
//
// Annotated functions may not write package-level state, may not write
// through pointer/slice/map-typed parameters or receivers (their caller's
// state), may not perform channel operations, launch goroutines, or
// iterate maps (iteration order is nondeterministic), and are closed under
// calls: every static callee must itself be //gicnet:pure, an
// assembly-backed leaf, or allowlisted (math, hash/fnv, ... by default).
// allow=write:<name> grants writes through the named parameter or receiver
// — the scratch-buffer idiom, where the "write" is reuse of caller-owned
// scratch space that never outlives the call's result. A caller passing
// its own parameter into such a slot must carry the matching grant, so
// write permissions stay visible along the whole call chain.
const PureMarker = "//gicnet:pure"

// Purecheck enforces the //gicnet:pure contract, plus presence: every
// function named in Roots (the fingerprint-path entry points) must carry
// the annotation.
type Purecheck struct {
	// AllowCalls are callees pure functions may call without the
	// annotation: whole packages by import path or single functions by
	// types.FullName.
	AllowCalls []string
	// Roots are types.FullNames that must be annotated //gicnet:pure.
	Roots []string
}

func (*Purecheck) Name() string { return "purecheck" }

// pureFunc is one annotated function: declaration plus write grants.
type pureFunc struct {
	decl     *ast.FuncDecl
	pkg      *Package
	writable map[string]bool         // parameter/receiver names writes may go through
	params   map[types.Object]string // parameter/receiver objects → name
}

// parsePureComment matches a doc-comment line against PureMarker and
// returns the allow= grants ("write:name" kinds). ok is false when the
// line is not a pure annotation.
func parsePureComment(text string) (allow map[string]bool, ok bool) {
	rest, found := strings.CutPrefix(text, PureMarker)
	if !found {
		return nil, false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // //gicnet:purexyz is not an annotation
	}
	allow = map[string]bool{}
	for _, field := range strings.Fields(rest) {
		if kinds, isAllow := strings.CutPrefix(field, "allow="); isAllow {
			for _, k := range strings.Split(kinds, ",") {
				allow[k] = true
			}
		}
	}
	return allow, true
}

func (a *Purecheck) Run(prog *Program) []Diagnostic {
	// Pass 1: collect every annotated function and every assembly leaf, so
	// the call rule can vet cross-package callees.
	pure := map[*types.Func]*pureFunc{}
	asmLeaf := map[*types.Func]bool{}
	allFuncs := map[string]*types.Func{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				allFuncs[fullName(fn)] = fn
				if fd.Body == nil {
					asmLeaf[fn] = true
					continue
				}
				if fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if allow, ok := parsePureComment(c.Text); ok {
						pure[fn] = newPureFunc(fd, pkg, allow)
						break
					}
				}
			}
		}
	}

	// Pass 2: check every annotated body.
	var diags []Diagnostic
	for _, pf := range pure {
		diags = append(diags, a.checkBody(prog, pf, pure, asmLeaf)...)
	}

	// Pass 3: presence. Every configured root whose package is loaded must
	// exist and carry the annotation — the fingerprint contract cannot rot
	// off a renamed function silently.
	for _, root := range a.Roots {
		fn, ok := allFuncs[root]
		if !ok {
			if a.rootPkgLoaded(prog, root) {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name(),
					Pos:      prog.Fset.Position(prog.Pkgs[0].Files[0].Pos()),
					Message:  fmt.Sprintf("configured pure root %s does not exist in the module (stale PureRoots entry?)", root),
				})
			}
			continue
		}
		if _, annotated := pure[fn]; !annotated {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name(),
				Pos:      prog.Fset.Position(fn.Pos()),
				Message:  fmt.Sprintf("%s is on a fingerprint path and must be annotated %s", root, PureMarker),
			})
		}
	}
	return diags
}

// rootPkgLoaded reports whether the package a root's FullName refers to is
// part of this load (partial -changed loads skip presence checks for
// packages outside the load).
func (a *Purecheck) rootPkgLoaded(prog *Program, root string) bool {
	for _, pkg := range prog.Pkgs {
		if strings.Contains(root, pkg.Path+".") {
			return true
		}
	}
	return false
}

func newPureFunc(fd *ast.FuncDecl, pkg *Package, allow map[string]bool) *pureFunc {
	pf := &pureFunc{
		decl:     fd,
		pkg:      pkg,
		writable: map[string]bool{},
		params:   map[types.Object]string{},
	}
	for k := range allow {
		if name, ok := strings.CutPrefix(k, "write:"); ok {
			pf.writable[name] = true
		}
	}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, id := range f.Names {
				if obj := pkg.Info.Defs[id]; obj != nil {
					pf.params[obj] = id.Name
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return pf
}

// pureAllowedBuiltins have no observable effect beyond their result (panic
// aborts — purity is moot on the failure path).
var pureAllowedBuiltins = map[string]bool{
	"len": true, "cap": true, "append": true, "make": true, "new": true,
	"panic": true, "recover": true, "min": true, "max": true,
	"real": true, "imag": true, "complex": true, "print": true, "println": true,
}

func (a *Purecheck) checkBody(prog *Program, pf *pureFunc, pure map[*types.Func]*pureFunc, asmLeaf map[*types.Func]bool) []Diagnostic {
	name := pf.decl.Name.Name
	info := pf.pkg.Info
	var diags []Diagnostic
	diag := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: a.Name(),
			Pos:      prog.Fset.Position(pos),
			Message:  fmt.Sprintf("pure %s: %s", name, fmt.Sprintf(format, args...)),
		})
	}

	// Closures declared inside the annotated body count as part of it:
	// their captures are the function's own locals.
	ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if n.Tok == token.DEFINE {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if _, isNew := info.Defs[id]; isNew || id.Name == "_" {
							continue // fresh variable, not a write
						}
					}
				}
				a.checkWrite(prog, pf, lhs, "", &diags)
			}
		case *ast.IncDecStmt:
			a.checkWrite(prog, pf, n.X, "", &diags)
		case *ast.SendStmt:
			diag(n.Pos(), "channel send is a side effect")
		case *ast.GoStmt:
			diag(n.Pos(), "launches a goroutine")
		case *ast.SelectStmt:
			diag(n.Pos(), "select is a channel operation")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				diag(n.Pos(), "channel receive is a side effect")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					diag(n.Pos(), "iterates a map: iteration order is nondeterministic")
				}
			}
		case *ast.CallExpr:
			diags = append(diags, a.checkCall(prog, pf, pure, asmLeaf, n)...)
		}
		return true
	})
	return diags
}

// checkCall vets one call site inside a pure body.
func (a *Purecheck) checkCall(prog *Program, pf *pureFunc, pure map[*types.Func]*pureFunc, asmLeaf map[*types.Func]bool, call *ast.CallExpr) []Diagnostic {
	info := pf.pkg.Info
	name := pf.decl.Name.Name
	var diags []Diagnostic
	diag := func(format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: a.Name(),
			Pos:      prog.Fset.Position(call.Pos()),
			Message:  fmt.Sprintf("pure %s: %s", name, fmt.Sprintf(format, args...)),
		})
	}
	if isConversion(info, call) {
		return nil
	}
	obj, viaInterface := calleeOf(info, call)
	switch callee := obj.(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "copy", "delete", "clear":
			if len(call.Args) > 0 {
				a.checkWrite(prog, pf, call.Args[0], callee.Name(), &diags)
			}
		default:
			if !pureAllowedBuiltins[callee.Name()] {
				diag("builtin %s is not purity-vetted", callee.Name())
			}
		}
		return diags
	case *types.Func:
		if callePure, ok := pure[callee]; ok {
			// The callee is vetted, but its write grants become this call's
			// writes: each granted parameter position must satisfy the
			// caller's own write rule.
			diags = append(diags, a.checkGrantedWrites(prog, pf, callePure, call)...)
			return diags
		}
		if asmLeaf[callee] {
			return diags
		}
		if viaInterface {
			// A dynamic dispatch cannot be vetted in general, but a method
			// on a locally-constructed value (the fnv.New64a() hash) stays
			// inside this call's own state.
			if recv := callReceiver(call); recv != nil && a.rootIsLocal(pf, recv) {
				return diags
			}
			diag("call to %s through an interface on non-local state cannot be purity-vetted", callee.Name())
			return diags
		}
		if a.callAllowed(callee) {
			// Allowlisted writers (fmt.Fprintf, binary.PutUint64) write
			// their first argument; hold it to the write rule.
			if writesFirstArg(callee) && len(call.Args) > 0 {
				a.checkWrite(prog, pf, call.Args[0], fullName(callee), &diags)
			}
			return diags
		}
		diag("calls %s, which is neither %s nor allowlisted", fullName(callee), PureMarker)
		return diags
	default:
		// Dynamic call through a function value: fine when the value is a
		// local (a closure over this function's own locals), opaque
		// otherwise.
		if root := rootIdent(call.Fun); root != nil && a.rootIsLocal(pf, root) {
			return diags
		}
		diag("dynamic call through a non-local function value cannot be purity-vetted")
		return diags
	}
}

// checkGrantedWrites applies the caller's write rule to every argument the
// pure callee is allowed to write through.
func (a *Purecheck) checkGrantedWrites(prog *Program, pf *pureFunc, callee *pureFunc, call *ast.CallExpr) []Diagnostic {
	if len(callee.writable) == 0 {
		return nil
	}
	var diags []Diagnostic
	// Receiver grant: the method expression's base object.
	if callee.decl.Recv != nil && len(callee.decl.Recv.List) > 0 && len(callee.decl.Recv.List[0].Names) > 0 {
		recvName := callee.decl.Recv.List[0].Names[0].Name
		if callee.writable[recvName] {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				a.checkWrite(prog, pf, sel.X, callee.decl.Name.Name, &diags)
			}
		}
	}
	// Parameter grants, positionally.
	idx := 0
	if callee.decl.Type.Params != nil {
		for _, f := range callee.decl.Type.Params.List {
			for _, id := range f.Names {
				if callee.writable[id.Name] && idx < len(call.Args) {
					a.checkWrite(prog, pf, call.Args[idx], callee.decl.Name.Name, &diags)
				}
				idx++
			}
		}
	}
	return diags
}

// checkWrite enforces the write rule on one lvalue (or write-reaching
// argument): writes must land in this function's own locals — not in
// package-level state, and not through a parameter or receiver unless an
// allow=write:<name> grant covers it. via names the callee responsible
// when the write happens inside a granted call.
func (a *Purecheck) checkWrite(prog *Program, pf *pureFunc, lhs ast.Expr, via string, diags *[]Diagnostic) {
	info := pf.pkg.Info
	name := pf.decl.Name.Name
	flag := func(format string, args ...any) {
		*diags = append(*diags, Diagnostic{
			Analyzer: a.Name(),
			Pos:      prog.Fset.Position(lhs.Pos()),
			Message:  fmt.Sprintf("pure %s: %s", name, fmt.Sprintf(format, args...)),
		})
	}
	root, indirect := writeRoot(info, lhs)
	if root == nil {
		flag("write through an unanalyzable expression")
		return
	}
	if root.Name == "_" {
		return
	}
	obj := info.Uses[root]
	if obj == nil {
		obj = info.Defs[root]
	}
	if obj == nil {
		return
	}
	suffix := ""
	if via != "" {
		suffix = fmt.Sprintf(" (via %s)", via)
	}
	if pname, isParam := pf.params[obj]; isParam {
		if pf.writable[pname] {
			return
		}
		if !indirect && via == "" {
			return // rebinding the parameter's local copy
		}
		flag("writes through parameter %s%s: annotate allow=write:%s if this is caller-owned scratch", pname, suffix, pname)
		return
	}
	if isPackageLevel(obj) {
		flag("writes package-level state %s%s", root.Name, suffix)
		return
	}
	// Local to the annotated function (closure locals included).
	if obj.Pos() >= pf.decl.Pos() && obj.Pos() < pf.decl.End() {
		return
	}
	flag("writes %s, which is declared outside this function%s", root.Name, suffix)
}

// writeRoot peels an lvalue to its root identifier, reporting whether the
// path crosses an indirection (pointer deref, slice/map index, selector
// through a pointer) — a write past an indirection mutates shared state,
// a write to the plain variable only mutates the local copy.
func writeRoot(info *types.Info, lhs ast.Expr) (root *ast.Ident, indirect bool) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			return e, indirect
		case *ast.StarExpr:
			indirect = true
			lhs = e.X
		case *ast.IndexExpr:
			if t := info.TypeOf(e.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					indirect = true
				}
			}
			lhs = e.X
		case *ast.SelectorExpr:
			if t := info.TypeOf(e.X); t != nil {
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					indirect = true
				}
			}
			lhs = e.X
		case *ast.SliceExpr:
			lhs = e.X
		default:
			return nil, indirect
		}
	}
}

func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Pkg() != nil &&
		obj.Parent() == obj.Pkg().Scope()
}

// rootIsLocal reports whether an expression's root identifier resolves to
// something declared inside the annotated function.
func (a *Purecheck) rootIsLocal(pf *pureFunc, e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := pf.pkg.Info.Uses[root]
	if obj == nil {
		obj = pf.pkg.Info.Defs[root]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= pf.decl.Pos() && obj.Pos() < pf.decl.End()
}

// callReceiver returns the receiver expression of a method call, nil for
// plain calls.
func callReceiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// writesFirstArg recognises allowlisted callees whose contract is writing
// into their first argument (stream printers, fixed-width encoders).
func writesFirstArg(fn *types.Func) bool {
	n := fn.Name()
	return strings.HasPrefix(n, "Fprint") || strings.HasPrefix(n, "Put") ||
		n == "Write" || strings.HasPrefix(n, "Append")
}

func (a *Purecheck) callAllowed(fn *types.Func) bool {
	full := fullName(fn)
	for _, pat := range a.AllowCalls {
		if pat == full {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == pat {
			return true
		}
	}
	return false
}
