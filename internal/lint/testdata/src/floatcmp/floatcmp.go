// Package floatcmp is a lint fixture: exact float equality the analyzer
// must flag, next to the zero tests and suppressions it must accept.
package floatcmp

func equal(a, b float64) bool {
	return a == b // want `== on floating-point operands`
}

func notEqual(a, b float32) bool {
	return a != b // want `!= on floating-point operands`
}

func halfCheck(frac float64) bool {
	return frac == 0.5 // want `== on floating-point operands`
}

func complexEqual(a, b complex128) bool {
	return a == b // want `== on floating-point operands`
}

func zeroTest(p float64) bool {
	return p == 0 // exact zero: well-defined sentinel test
}

func zeroTestFlipped(p float64) bool {
	return 0.0 != p // exact zero on either side
}

func intEqual(a, b int) bool {
	return a == b // integers compare exactly
}

func ordered(a, b float64) bool {
	return a < b // orderings are fine; only == and != are flagged
}

func suppressed(got, want float64) bool {
	//gicnet:allow floatcmp fixture: exact fast path before a tolerance test
	return got == want
}
