package concheck

import "context"

func leakedRecv() {
	ch := make(chan int)
	go func() {
		<-ch // want `goroutine blocks receiving from captured channel ch`
	}()
}

func leakedSend() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want `goroutine sends to captured unbuffered channel ch`
	}()
}

func spinner() {
	go func() {
		for { // want `goroutine spins in a for`
		}
	}()
}

func closedByLauncher() {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	close(ch)
}

func bufferedSend() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
}

func escapesIntoCallee(register func(chan int)) {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	register(ch)
}

func cancellableSelect(ctx context.Context) {
	ch := make(chan int)
	go func() {
		select {
		case <-ch:
		case <-ctx.Done():
		}
	}()
}

func spinnerWithExit(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	close(stop)
}
