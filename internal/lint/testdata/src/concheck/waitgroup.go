package concheck

import "sync"

func addInsideGoroutine(n int, sink *int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() { // want `goroutine calls wg.Done but no wg.Add precedes the launch`
			wg.Add(1) // want `wg.Add inside the launched goroutine`
			defer wg.Done()
			*sink++
		}()
	}
	wg.Wait()
}

func doneWithoutAdd(sink *int) {
	var wg sync.WaitGroup
	go func() { // want `goroutine calls wg.Done but no wg.Add precedes the launch`
		defer wg.Done()
		*sink++
	}()
	wg.Wait()
}

func balanced(n int, sink *int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			*sink++
		}()
	}
	wg.Wait()
}

// A WaitGroup that reaches this function from outside has its Add with the
// caller; the launch site is legitimately Done-only.
func helperLaunch(wg *sync.WaitGroup, sink *int) {
	go func() {
		defer wg.Done()
		*sink++
	}()
}
