package concheck

// Arena mimics the simulation arena's acquire/release ownership guard; the
// fixture test configures it as an AcquirePair.
type Arena struct{ owner uint32 }

func (a *Arena) acquire() {}
func (a *Arena) release() {}

func pairingBare(a *Arena) {
	a.acquire() // want `a.acquire is not immediately followed by defer a.release`
	work()
	a.release()
}

func pairingGapped(a *Arena) {
	a.acquire() // want `a.acquire is not immediately followed by defer a.release`
	work()
	defer a.release()
}

func pairingGood(a *Arena) {
	a.acquire()
	defer a.release()
	work()
}

func work() {}
