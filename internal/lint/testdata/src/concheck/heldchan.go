// Package concheck violates the concurrency-discipline contracts on
// purpose: every // want line is a shape the analyzer must flag, and every
// unannotated sibling is a legal shape it must stay silent on.
package concheck

import "sync"

var mu sync.Mutex

func heldSend(ch chan int) {
	mu.Lock()
	ch <- 1 // want `channel send while holding mu`
	mu.Unlock()
}

func heldRecvUnderDefer(ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	<-ch // want `channel receive while holding mu`
}

func heldBlockingSelect(a, b chan int) {
	mu.Lock()
	defer mu.Unlock()
	select { // want `blocking select while holding mu`
	case <-a:
	case <-b:
	}
}

func releasedBeforeSend(ch chan int) {
	mu.Lock()
	mu.Unlock()
	ch <- 1
}

func branchDoesNotLeakLockState(ch chan int, cond bool) {
	if cond {
		mu.Lock()
		defer mu.Unlock()
		return
	}
	<-ch
}
