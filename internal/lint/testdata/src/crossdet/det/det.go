// Package det stands in for a deterministic package: the fixture test
// names it in Crossdet.Pkgs, so every helper it reaches must satisfy the
// determinism body checks.
package det

import "fixture/crossdet/helper"

func Entry(m map[string]int) []string {
	return helper.Leaky(m)
}
