// Package helper sits outside the deterministic set. Leaky is reached
// from det.Entry, so its map-order leak must be flagged with the origin
// attribution; NotReached has the identical leak but no caller in det, so
// crossdet must stay silent on it — reachability, not package membership,
// drives enforcement.
package helper

func Leaky(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map: element order follows map iteration order \[reachable from deterministic package fixture/crossdet/det\]`
	}
	return out
}

func NotReached(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
