// Package hotpath is a lint fixture: allocation sites the hotpath analyzer
// must flag inside annotated functions, next to the allocation-free shapes
// it must accept.
package hotpath

import (
	"fmt"
	"math"
)

type point struct{ x, y float64 }

type adder interface{ Add(n int) int }

//gicnet:hotpath
func makesSlice(n int) []int {
	return make([]int, n) // want "make allocates"
}

//gicnet:hotpath
func newsValue() *point {
	return new(point) // want "new allocates"
}

//gicnet:hotpath
func appends(dst []int, v int) []int {
	return append(dst, v) // want "append may grow the backing array"
}

//gicnet:hotpath allow=append
func appendsAllowed(dst []int, v int) []int {
	return append(dst, v) // amortized high-water buffer: opened by allow=append
}

//gicnet:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want "slice literal allocates"
}

//gicnet:hotpath
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want "map literal allocates"
}

//gicnet:hotpath
func escapingLit() *point {
	return &point{1, 2} // want "composite literal escapes to the heap"
}

//gicnet:hotpath
func valueLit(a, b float64) point {
	return point{a, b} // stack value: not flagged
}

//gicnet:hotpath
func closes(n int) func() int {
	return func() int { return n } // want "closure literal"
}

//gicnet:hotpath
func formats(v int) {
	fmt.Println(v) // want "fmt.Println formats through interfaces"
}

func helper(v int) int { return v + 1 }

//gicnet:hotpath
func callsUnvetted(v int) int {
	return helper(v) // want "neither //gicnet:hotpath nor allowlisted"
}

//gicnet:hotpath
func callsVetted(dst []int, v int) (float64, int) {
	return math.Log1p(float64(v)), appendsAllowed(dst, v)[0] // allowlisted math + hotpath callee
}

//gicnet:hotpath
func viaInterface(a adder) int {
	return a.Add(1) // want "through an interface"
}

//gicnet:hotpath
func dynamicCall(f func() int) int {
	return f() // want "dynamic call through a function value"
}

//gicnet:hotpath
func ifaceConv(v int) any {
	return any(v) // want "conversion of int to interface"
}

//gicnet:hotpath
func stringBytes(s string) []byte {
	return []byte(s) // want "copies"
}

//gicnet:hotpath
func boxSink(v any) any { return v }

//gicnet:hotpath
func boxesArg() any {
	return boxSink(42) // want "boxes int into interface"
}

//gicnet:hotpath
func cleanKernel(b []uint64, i int) bool {
	if i < 0 || i>>6 >= len(b) {
		panic("out of range") // panic on the failure path: allowed
	}
	return b[i>>6]&(1<<(uint(i)&63)) != 0
}
