// Package asmleaf is a lint fixture for assembly-backed declarations: a Go
// function declared without a body is implemented in assembly, cannot reach
// the allocator, and must therefore be accepted as an allocation-free leaf
// by the hotpath call rule — while calls to ordinary unvetted functions on
// the same line shape keep being flagged.
package asmleaf

// sumWordsAsm is "implemented in assembly": no body. The fixture loader
// type-checks but never links, so no .s file is needed here.
func sumWordsAsm(w []uint64) uint64

//go:noescape
func dotAsm(a, b []float64) float64

// plainHelper is an ordinary unvetted Go function for contrast.
func plainHelper(w []uint64) uint64 {
	var s uint64
	for _, x := range w {
		s += x
	}
	return s
}

//gicnet:hotpath
func callsAsmLeaf(w []uint64) uint64 {
	return sumWordsAsm(w) // ok: bodiless declarations are assembly leaves
}

//gicnet:hotpath
func callsNoescapeLeaf(a, b []float64) float64 {
	return dotAsm(a, b) // ok: the pragma changes nothing, still a leaf
}

//gicnet:hotpath
func callsPlain(w []uint64) uint64 {
	return plainHelper(w) // want "calls fixture/asmleaf.plainHelper, which is neither"
}

//gicnet:hotpath
func mixes(w []uint64, a, b []float64) float64 {
	s := sumWordsAsm(w)
	s += plainHelper(w) // want "calls fixture/asmleaf.plainHelper, which is neither"
	return float64(s) + dotAsm(a, b)
}
