// Package errcheck is a lint fixture: discarded must-check errors the
// analyzer must flag, next to the checked forms it must accept.
package errcheck

import (
	"bufio"
	"io"
	"os"
)

func discarded(w *bufio.Writer) {
	w.Flush() // want `error result of \(\*bufio\.Writer\)\.Flush discarded`
}

func blanked(w *bufio.Writer) {
	_ = w.Flush() // want `error result of \(\*bufio\.Writer\)\.Flush assigned to _`
}

func deferred(f *os.File) {
	defer f.Close() // want `error result of \(\*os\.File\)\.Close discarded`
}

func writeFile(path string, data []byte) {
	os.WriteFile(path, data, 0o644) // want "error result of os.WriteFile discarded"
}

func checked(w *bufio.Writer) error {
	return w.Flush() // returned to the caller: checked
}

func handled(w *bufio.Writer) {
	if err := w.Flush(); err != nil {
		panic(err)
	}
}

func notListed(w io.Writer, p []byte) {
	w.Write(p) // not on the must-check list: stdlib vet territory
}
