// Package purecheck violates the //gicnet:pure contract on purpose: every
// // want line is a side effect the analyzer must flag, and every
// unannotated sibling is a legal pure shape it must stay silent on.
package purecheck

var counter int

//gicnet:pure
func writesGlobal() int {
	counter++ // want `pure writesGlobal: writes package-level state counter`
	return counter
}

//gicnet:pure
func writesParam(dst []int) {
	dst[0] = 1 // want `pure writesParam: writes through parameter dst`
}

// fill is the scratch-buffer idiom: the write grant is declared, so the
// body is legal — and the grant travels to every caller.
//
//gicnet:pure allow=write:dst
func fill(dst []int, v int) {
	for i := range dst {
		dst[i] = v
	}
}

//gicnet:pure
func callsFillOnParam(buf []int) {
	fill(buf, 7) // want `pure callsFillOnParam: writes through parameter buf \(via fill\)`
}

//gicnet:pure allow=write:buf
func callsFillAllowed(buf []int) {
	fill(buf, 7)
}

//gicnet:pure
func fillsOwnScratch() int {
	buf := make([]int, 4)
	fill(buf, 9)
	return buf[0]
}

func impure() { counter++ }

//gicnet:pure
func callsImpure() {
	impure() // want `pure callsImpure: calls fixture/purecheck.impure, which is neither //gicnet:pure nor allowlisted`
}

//gicnet:pure
func localsAreFair(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// Rebinding a parameter's local copy is not a caller-visible write.
//
//gicnet:pure
func rebindsParamCopy(n int) int {
	n = n * 2
	return n
}
