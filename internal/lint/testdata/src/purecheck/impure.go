package purecheck

import "time"

//gicnet:pure
func readsClock() time.Time {
	return time.Now() // want `pure readsClock: calls time.Now, which is neither`
}

//gicnet:pure
func sumMap(m map[string]int) int {
	t := 0
	for _, v := range m { // want `pure sumMap: iterates a map`
		t += v
	}
	return t
}

//gicnet:pure
func sendsChan(ch chan int) {
	ch <- 1 // want `pure sendsChan: channel send is a side effect`
}

//gicnet:pure
func launches() {
	x := 0
	f := func() { x++ }
	go f() // want `pure launches: launches a goroutine`
}

// mustAnnotate is configured as a pure root in the fixture test but does
// not carry the annotation; presence enforcement must flag the function.
func mustAnnotate() int { return 1 } // want `fixture/purecheck.mustAnnotate is on a fingerprint path and must be annotated //gicnet:pure`
