// Package determ is a lint fixture: every construct the determinism
// analyzer must flag, next to the order-independent shapes it must not.
package determ

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(start) // want "time.Since reads the wall clock"
}

func globalRand() int {
	return rand.Intn(6) // want "uses the process-global random stream"
}

func seededRand() int {
	r := rand.New(rand.NewSource(1859)) // seeded generator: deterministic, not flagged
	return r.Intn(6)
}

func mapAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}

func mapAppendSuppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		//gicnet:allow determinism fixture: pretend keys are sorted below
		keys = append(keys, k)
	}
	return keys
}

func mapReturn(m map[string]int) string {
	for k := range m {
		return k // want "return inside range over map"
	}
	return ""
}

func floatFold(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "non-integer .. fold on total"
	}
	return total
}

func lastWins(m map[string]int) int {
	var got int
	for _, v := range m {
		got = v // want "assignment to got inside range over map"
	}
	return got
}

// Order-independent folds the analyzer must accept.
func cleanFolds(m map[string]int, slots []int) (int, int, bool, map[string]int) {
	count := 0
	sum := 0
	found := false
	inverted := make(map[string]int, len(m))
	best := 0
	for k, v := range m {
		count++         // integer increment: exact and commutative
		sum += v        // integer fold: modular arithmetic
		found = true    // constant store: idempotent
		inverted[k] = v // keyed map write: distinct keys, distinct slots
		if v > best {
			best = v // min/max fold: order-independent
		}
		_ = slots
	}
	return count + best, sum, found, inverted
}

func keyedSliceWrite(m map[int]string, out []string) {
	for k, v := range m {
		out[k] = v // write indexed by the range key: order-independent
	}
}

func innerAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := make([]int, 0, len(vs))
		local = append(local, vs...) // appends to a loop-local: dies each iteration
		n += len(local)
	}
	return n
}
