package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Program is a fully type-checked view of a set of packages sharing one
// token.FileSet. It is what every Analyzer runs over.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("gicnet/internal/graph")
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadOptions tunes what LoadModuleOpts loads.
type LoadOptions struct {
	// Tags are extra build tags considered true when selecting files, the
	// way `go build -tags` would (the host GOOS/GOARCH and gc are always
	// true). "purego" loads the pure-Go kernel variants instead of the
	// assembly dispatch files.
	Tags []string

	// Only, when non-empty, restricts the load to the named import paths
	// plus their transitive module-internal dependencies (typechecking a
	// package requires its imports). The -changed mode of cmd/gicnetlint
	// uses this so iterating on one package does not re-typecheck the
	// whole module.
	Only map[string]bool
}

// rawPkg is one parsed-but-not-yet-typechecked package.
type rawPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports map[string]bool
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at root (the directory holding go.mod), using only the standard
// library: module-internal imports resolve against the packages being
// loaded, everything else falls back to the toolchain's source importer.
// Directories named testdata or vendor and hidden directories are skipped,
// as are _test.go files — the repo contracts the analyzers enforce bind
// shipped code, not tests.
func LoadModule(root string) (*Program, error) {
	return LoadModuleOpts(root, LoadOptions{})
}

// LoadModuleOpts is LoadModule with explicit build tags and an optional
// package subset.
func LoadModuleOpts(root string, opts LoadOptions) (*Program, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	tags := map[string]bool{}
	for _, t := range opts.Tags {
		if t != "" {
			tags[t] = true
		}
	}

	var raws []*rawPkg
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		files, perr := parseDir(fset, path, tags)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		raws = append(raws, newRawPkg(importPath, path, files))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(opts.Only) > 0 {
		raws = subsetWithDeps(raws, opts.Only)
	}
	order, err := topoOrder(raws)
	if err != nil {
		return nil, err
	}
	return checkAll(fset, order)
}

// newRawPkg records one parsed package and its import set.
func newRawPkg(importPath, dir string, files []*ast.File) *rawPkg {
	rp := &rawPkg{path: importPath, dir: dir, files: files, imports: map[string]bool{}}
	for _, f := range files {
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			rp.imports[p] = true
		}
	}
	return rp
}

// subsetWithDeps keeps the packages in want plus everything they import
// (transitively) from the same load — typechecking needs the dependencies
// even when only the wanted packages are analyzed.
func subsetWithDeps(raws []*rawPkg, want map[string]bool) []*rawPkg {
	byPath := map[string]*rawPkg{}
	for _, rp := range raws {
		byPath[rp.path] = rp
	}
	keep := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		rp, ok := byPath[path]
		if !ok || keep[path] {
			return
		}
		keep[path] = true
		for dep := range rp.imports {
			visit(dep)
		}
	}
	for path := range want {
		visit(path)
	}
	var out []*rawPkg
	for _, rp := range raws {
		if keep[rp.path] {
			out = append(out, rp)
		}
	}
	return out
}

// topoOrder sorts packages so each package's module-internal dependencies
// precede it (the order typechecking requires).
func topoOrder(raws []*rawPkg) ([]*rawPkg, error) {
	sort.Slice(raws, func(i, j int) bool { return raws[i].path < raws[j].path })
	byPath := map[string]*rawPkg{}
	for _, rp := range raws {
		byPath[rp.path] = rp
	}
	var order []*rawPkg
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(rp *rawPkg) error
	visit = func(rp *rawPkg) error {
		switch state[rp.path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", rp.path)
		case 2:
			return nil
		}
		state[rp.path] = 1
		for _, dep := range sortedKeys(rp.imports) {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[rp.path] = 2
		order = append(order, rp)
		return nil
	}
	for _, rp := range raws {
		if err := visit(rp); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// checkAll typechecks the topo-ordered packages, registering each with the
// importer so later packages resolve against it.
func checkAll(fset *token.FileSet, order []*rawPkg) (*Program, error) {
	imp := &chainImporter{
		std:  importer.ForCompiler(fset, "source", nil),
		mods: map[string]*types.Package{},
	}
	prog := &Program{Fset: fset}
	for _, rp := range order {
		pkg, err := check(fset, rp.path, rp.files, imp)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", rp.path, err)
		}
		imp.mods[rp.path] = pkg.Types
		pkg.Dir = rp.dir
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// LoadFixture parses and type-checks the package tree rooted at dir under
// the given synthetic import path: dir itself plus any nested directories
// holding Go files, so fixtures can exercise cross-package analyzers
// (subdirectory a/b loads as importPath/a/b). Fixture packages may import
// the standard library and each other; the lint test suite uses this to
// run analyzers over testdata packages that deliberately violate the
// contracts.
func LoadFixture(dir, importPath string) (*Program, error) {
	fset := token.NewFileSet()
	var raws []*rawPkg
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		files, perr := parseDir(fset, path, nil)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(dir, path)
		if rerr != nil {
			return rerr
		}
		pkgPath := importPath
		if rel != "." {
			pkgPath = importPath + "/" + filepath.ToSlash(rel)
		}
		raws = append(raws, newRawPkg(pkgPath, path, files))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	order, err := topoOrder(raws)
	if err != nil {
		return nil, err
	}
	return checkAll(fset, order)
}

// parseDir parses every non-test .go file directly in dir that the build
// configuration (host GOOS/GOARCH plus tags) selects, with comments.
// Build-constraint filtering matters because packages with GOARCH-tagged
// variants (the bitset kernels) declare the same functions in mutually
// exclusive files — loading them all would be a redeclaration error the
// real build never sees.
func parseDir(fset *token.FileSet, dir string, tags map[string]bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !suffixSelected(name) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !constraintSelected(f, tags) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// knownGOOS/knownGOARCH are the port names the filename-suffix rule
// recognises; a suffix outside these lists is just part of the name.
var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// suffixSelected applies the go/build filename rule: a trailing _GOARCH,
// _GOOS, or _GOOS_GOARCH component restricts the file to that port. The
// lint loader builds for the host configuration, like `go build` would.
func suffixSelected(name string) bool {
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	if n := len(parts); n >= 2 && knownGOARCH[parts[n-1]] {
		if parts[n-1] != runtime.GOARCH {
			return false
		}
		parts = parts[:n-1]
	}
	if n := len(parts); n >= 2 && knownGOOS[parts[n-1]] {
		return parts[n-1] == runtime.GOOS
	}
	return true
}

// constraintSelected evaluates the file's //go:build (or legacy +build)
// line. Tags in play: GOOS, GOARCH, the gc toolchain, and whatever extra
// tags the caller passed (the purego lint sweep); anything else is false,
// exactly as in `go build [-tags ...]`.
func constraintSelected(f *ast.File, tags map[string]bool) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) && !constraint.IsPlusBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			ok := expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" || tags[tag]
			})
			if !ok {
				return false
			}
		}
	}
	return true
}

// check type-checks one package's files.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// chainImporter resolves module-internal packages from the in-progress load
// and everything else (the standard library) through the source importer.
type chainImporter struct {
	std  types.Importer
	mods map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.mods[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
