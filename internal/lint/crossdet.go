package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Crossdet lifts the determinism checks across package boundaries: the
// deterministic packages (Pkgs, the replay contract) call helpers in
// packages outside the contract — routing, stats, geo — and a map-order
// leak or wall-clock read in such a helper breaks replay just as surely as
// one written inline. Crossdet builds the module's static call graph over
// the topo-ordered type info, marks every function reachable from a
// deterministic package, and runs the determinism body checks on the
// reached functions that live outside those packages (inside them, the
// plain determinism analyzer already covers every function, reachable or
// not). Each finding carries the deterministic package that reaches the
// offending helper.
//
// Reachability is static calls only (including calls made by closures,
// charged to the enclosing function); a function reference passed as a
// value without being called at a seen site is invisible to the graph.
type Crossdet struct {
	Pkgs []string
}

func (*Crossdet) Name() string { return "crossdet" }

// funcDecl locates one function's declaration.
type funcDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func (a *Crossdet) Run(prog *Program) []Diagnostic {
	// Index every declared function in the module.
	decls := map[*types.Func]funcDecl{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = funcDecl{pkg: pkg, decl: fd}
				}
			}
		}
	}

	// Seed the worklist with every function of the deterministic packages,
	// in sorted package / source order so the origin attribution (which
	// deterministic package gets credited with reaching a helper) is
	// stable across runs.
	origin := map[*types.Func]string{}
	var queue []*types.Func
	for _, pkg := range prog.Pkgs {
		if !matchPrefix(a.Pkgs, pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					origin[fn] = pkg.Path
					queue = append(queue, fn)
				}
			}
		}
	}

	// BFS over static call edges.
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd, ok := decls[fn]
		if !ok {
			continue
		}
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj, _ := calleeOf(fd.pkg.Info, call)
			callee, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			if _, declared := decls[callee]; !declared {
				return true // stdlib or interface-abstract: out of module scope
			}
			if _, seen := origin[callee]; !seen {
				origin[callee] = origin[fn]
				queue = append(queue, callee)
			}
			return true
		})
	}

	// Check every reached function living outside the deterministic
	// packages with the shared determinism body checks.
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if matchPrefix(a.Pkgs, pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				orig, reached := origin[fn]
				if !reached {
					continue
				}
				pass := &detPass{
					name:   a.Name(),
					suffix: fmt.Sprintf(" [reachable from deterministic package %s]", orig),
				}
				diags = append(diags, pass.inspect(prog, pkg, fd.Body)...)
			}
		}
	}
	return diags
}
