// Package report renders analysis results as fixed-width text tables and
// plot-ready series, the output format of the reproduction harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from format/value pairs: each cell is
// fmt.Sprintf(format[i], value[i]).
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprint(v)
	}
	t.AddRow(cells...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is a named (x, y) sequence, optionally with an error band — the
// textual form of one curve in a paper figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	// Err is the optional per-point standard deviation (error bars).
	Err []float64
}

// Validate checks that the coordinate slices line up.
func (s *Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q: %d x vs %d y", s.Name, len(s.X), len(s.Y))
	}
	if s.Err != nil && len(s.Err) != len(s.X) {
		return fmt.Errorf("report: series %q: %d err vs %d x", s.Name, len(s.Err), len(s.X))
	}
	return nil
}

// RenderSeries writes one or more series as aligned columns:
// x s1 [s1err] s2 [s2err] ... with a header line. All series must share X.
func RenderSeries(w io.Writer, title string, xLabel string, series ...*Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		if len(s.X) != len(series[0].X) {
			return fmt.Errorf("report: series %q has mismatched length", s.Name)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "## %s\n", title)
	}
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "  %-12s", s.Name)
		if s.Err != nil {
			fmt.Fprintf(&b, "  %-12s", s.Name+"-sd")
		}
	}
	b.WriteByte('\n')
	for i := range series[0].X {
		fmt.Fprintf(&b, "%-12.4g", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(&b, "  %-12.4g", s.Y[i])
			if s.Err != nil {
				fmt.Fprintf(&b, "  %-12.4g", s.Err[i])
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", 100*frac) }

// Km formats a length in km with no decimals.
func Km(v float64) string { return fmt.Sprintf("%.0f km", v) }
