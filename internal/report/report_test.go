package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-longer", "22")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// columns aligned: every data line at least as wide as widest cell
	if !strings.HasPrefix(lines[3], "alpha      ") {
		t.Errorf("row not padded: %q", lines[3])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "##") {
		t.Error("untitled table should not emit a title line")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRowf(1.5, "z")
	if tb.Rows[0][0] != "1.5" || tb.Rows[0][1] != "z" {
		t.Errorf("rows = %v", tb.Rows)
	}
}

func TestSeriesValidate(t *testing.T) {
	s := &Series{Name: "s", X: []float64{1, 2}, Y: []float64{1}}
	if err := s.Validate(); err == nil {
		t.Error("want length mismatch error")
	}
	s = &Series{Name: "s", X: []float64{1}, Y: []float64{1}, Err: []float64{1, 2}}
	if err := s.Validate(); err == nil {
		t.Error("want err-length mismatch error")
	}
	s = &Series{Name: "s", X: []float64{1}, Y: []float64{1}, Err: []float64{0.1}}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRenderSeries(t *testing.T) {
	a := &Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}}
	b := &Series{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}, Err: []float64{1, 2}}
	var buf strings.Builder
	if err := RenderSeries(&buf, "curves", "x", a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## curves", "a", "b", "b-sd", "10", "40"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, 2 points
		t.Errorf("lines = %d", len(lines))
	}
}

func TestRenderSeriesErrors(t *testing.T) {
	var buf strings.Builder
	if err := RenderSeries(&buf, "t", "x"); err == nil {
		t.Error("want error for no series")
	}
	a := &Series{Name: "a", X: []float64{1}, Y: []float64{1}}
	b := &Series{Name: "b", X: []float64{1, 2}, Y: []float64{1, 2}}
	if err := RenderSeries(&buf, "t", "x", a, b); err == nil {
		t.Error("want error for mismatched series")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.123))
	}
	if Km(1234.56) != "1235 km" {
		t.Errorf("Km = %q", Km(1234.56))
	}
}
