package infra

import (
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/geo"
)

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze("x", nil); err == nil {
		t.Error("want error for no sites")
	}
}

func TestAnalyzeBasics(t *testing.T) {
	coords := []geo.Coord{
		{Lat: 50, Lon: 0},   // europe, above 40
		{Lat: -30, Lon: 25}, // africa, south
		{Lat: 10, Lon: 100}, // asia
		{Lat: 45, Lon: -90}, // north america, above 40
	}
	d, err := Analyze("test", coords)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 4 {
		t.Errorf("count = %d", d.Count)
	}
	if d.FracAbove40 != 0.5 {
		t.Errorf("FracAbove40 = %v", d.FracAbove40)
	}
	if d.SouthernShare != 0.25 {
		t.Errorf("SouthernShare = %v", d.SouthernShare)
	}
	if len(d.Regions) != 4 {
		t.Errorf("regions = %v", d.Regions)
	}
	if len(d.Curve) != 10 {
		t.Errorf("curve len = %d", len(d.Curve))
	}
}

func TestResilienceScoreBounds(t *testing.T) {
	d, err := Analyze("x", []geo.Coord{{Lat: 0, Lon: 0}})
	if err != nil {
		t.Fatal(err)
	}
	s := d.ResilienceScore()
	if s < 0 || s > 1 {
		t.Errorf("score = %v", s)
	}
	// A single equatorial site: no hemisphere diversity penalty applies to
	// the south share (0), low latitude credit is full.
	spread, err := Analyze("spread", []geo.Coord{
		{Lat: 10, Lon: 0}, {Lat: -10, Lon: 30}, {Lat: 5, Lon: 100},
		{Lat: -20, Lon: -60}, {Lat: 15, Lon: -100}, {Lat: -25, Lon: 140},
	})
	if err != nil {
		t.Fatal(err)
	}
	if spread.ResilienceScore() <= s {
		t.Errorf("diverse layout %v should beat single site %v", spread.ResilienceScore(), s)
	}
}

func TestBuildReportAndPaperConclusions(t *testing.T) {
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	r, err := BuildReport(w)
	if err != nil {
		t.Fatal(err)
	}
	// §4.4.2: Google's spread beats Facebook's.
	if !r.GoogleMoreResilientThanFacebook() {
		t.Errorf("google score %v should exceed facebook %v",
			r.Google.ResilienceScore(), r.Facebook.ResilienceScore())
	}
	// §4.4.3: DNS roots are highly distributed: all six inhabited regions.
	if len(r.DNS.Regions) < 6 {
		t.Errorf("dns regions = %v", r.DNS.Regions)
	}
	// DNS should be among the most resilient systems analysed.
	if r.DNS.ResilienceScore() < r.Facebook.ResilienceScore() {
		t.Error("dns should score at least as well as facebook")
	}
	// Facebook is northern-concentrated: no southern-hemisphere majority.
	if r.Facebook.SouthernShare > 0.2 {
		t.Errorf("facebook southern share = %v", r.Facebook.SouthernShare)
	}
	// IXPs concentrate above 40 (43% in the paper).
	if r.IXPs.FracAbove40 < 0.3 {
		t.Errorf("IXP above-40 = %v", r.IXPs.FracAbove40)
	}
}
