// Package infra analyses the non-cable Internet systems of the paper's
// §4.4: DNS root servers, hyperscale data centers, and IXPs — how their
// geographic distribution translates into solar-storm resilience.
package infra

import (
	"errors"

	"gicnet/internal/dataset"
	"gicnet/internal/geo"
)

// Distribution summarises the latitude exposure of a set of sites.
type Distribution struct {
	// Name labels the system in reports.
	Name string
	// Count is the number of sites.
	Count int
	// FracAbove40 is the share of sites in the vulnerable band.
	FracAbove40 float64
	// Curve is the Figure 4-style threshold series over
	// geo.DefaultThresholds().
	Curve []float64
	// Regions counts sites per continental region.
	Regions map[geo.Region]int
	// SouthernShare is the fraction of sites in the southern hemisphere —
	// hemisphere diversity survives a northern-concentrated storm better.
	SouthernShare float64
}

// Analyze computes a Distribution from site coordinates.
func Analyze(name string, coords []geo.Coord) (*Distribution, error) {
	if len(coords) == 0 {
		return nil, errors.New("infra: no sites")
	}
	d := &Distribution{
		Name:    name,
		Count:   len(coords),
		Curve:   geo.ThresholdCurve(coords, geo.DefaultThresholds()),
		Regions: make(map[geo.Region]int),
	}
	south := 0
	for _, c := range coords {
		d.Regions[geo.RegionOf(c)]++
		if c.Lat < 0 {
			south++
		}
	}
	d.FracAbove40 = geo.FractionAbove(coords, 40)
	d.SouthernShare = float64(south) / float64(len(coords))
	return d, nil
}

// ResilienceScore is a simple 0-1 heuristic combining the shares the paper
// argues matter: region diversity, hemisphere diversity, and low exposure
// above 40 degrees. Higher is more resilient.
func (d *Distribution) ResilienceScore() float64 {
	regionDiversity := float64(len(d.Regions)) / float64(len(geo.Regions()))
	if regionDiversity > 1 {
		regionDiversity = 1
	}
	hemisphere := d.SouthernShare * 2 // 0.5 share -> full credit
	if hemisphere > 1 {
		hemisphere = 1
	}
	lowLatitude := 1 - d.FracAbove40
	return (regionDiversity + hemisphere + lowLatitude) / 3
}

// Report bundles the §4.4 systems analyses.
type Report struct {
	DNS      *Distribution
	Google   *Distribution
	Facebook *Distribution
	IXPs     *Distribution
	Routers  *Distribution
}

// BuildReport analyses every system in the world.
func BuildReport(w *dataset.World) (*Report, error) {
	dns, err := Analyze("dns-roots", dataset.DNSInstanceCoords(w.DNSRoots))
	if err != nil {
		return nil, err
	}
	google, err := Analyze("google-dcs", dataset.SiteCoords(w.GoogleDCs))
	if err != nil {
		return nil, err
	}
	facebook, err := Analyze("facebook-dcs", dataset.SiteCoords(w.FacebookDCs))
	if err != nil {
		return nil, err
	}
	ixps, err := Analyze("ixps", dataset.SiteCoords(w.IXPs))
	if err != nil {
		return nil, err
	}
	routers, err := Analyze("routers", w.Routers.RouterCoords())
	if err != nil {
		return nil, err
	}
	return &Report{DNS: dns, Google: google, Facebook: facebook, IXPs: ixps, Routers: routers}, nil
}

// GoogleMoreResilientThanFacebook reports the paper's §4.4.2 conclusion
// as a computed comparison.
func (r *Report) GoogleMoreResilientThanFacebook() bool {
	return r.Google.ResilienceScore() > r.Facebook.ResilienceScore()
}
