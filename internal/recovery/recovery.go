// Package recovery implements the post-storm repair problem of §3.2.2: a
// small global fleet of cable ships must visit every damaged cable, each
// repair takes days to weeks, and — unlike the localized faults the fleet
// was sized for — a superstorm damages hundreds of cables at once. The
// scheduler decides repair order to restore connectivity fastest.
package recovery

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gicnet/internal/geo"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// Fault is one damaged cable awaiting repair.
type Fault struct {
	// Cable indexes the network's cable list.
	Cable int
	// DamagedRepeaters drives repair duration.
	DamagedRepeaters int
	// Location approximates where the ship must sail (midpoint of the
	// cable's first segment).
	Location geo.Coord
}

// FaultsFrom samples faults for every dead cable: the number of damaged
// repeaters is Binomial(repeaters, severity), at least 1. Networks without
// coordinates get faults at an unknown location (zero coordinate) —
// transit time still accrues from the ship's position.
func FaultsFrom(net *topology.Network, cableDead []bool, spacingKm, severity float64, rng *xrand.Source) ([]Fault, error) {
	if len(cableDead) != len(net.Cables) {
		return nil, errors.New("recovery: death vector length mismatch")
	}
	if severity <= 0 || severity > 1 {
		return nil, errors.New("recovery: severity must be in (0,1]")
	}
	var out []Fault
	for ci, dead := range cableDead {
		if !dead {
			continue
		}
		reps := net.Cables[ci].RepeaterCount(spacingKm)
		damaged := 0
		for r := 0; r < reps; r++ {
			if rng.Bool(severity) {
				damaged++
			}
		}
		if damaged == 0 {
			damaged = 1 // the cable died; something broke
		}
		f := Fault{Cable: ci, DamagedRepeaters: damaged}
		seg := net.Cables[ci].Segments[0]
		a, b := net.Nodes[seg.A], net.Nodes[seg.B]
		if a.HasCoord && b.HasCoord {
			f.Location = geo.Midpoint(a.Coord, b.Coord)
		}
		out = append(out, f)
	}
	return out, nil
}

// Ship is one repair vessel.
type Ship struct {
	Name string
	// Pos is the ship's home port / current position.
	Pos geo.Coord
	// SpeedKmPerDay is cruise speed (cable ships do ~300-500 km/day).
	SpeedKmPerDay float64
}

// DefaultFleet returns a representative global fleet stationed at major
// cable depots. The real fleet numbers only a few tens of vessels — the
// paper's point is that it was sized for localized damage.
func DefaultFleet() []Ship {
	mk := func(name string, lat, lon float64) Ship {
		return Ship{Name: name, Pos: geo.Coord{Lat: lat, Lon: lon}, SpeedKmPerDay: 400}
	}
	return []Ship{
		mk("cs-atlantic-1", 50.9, -1.4),  // Southampton
		mk("cs-atlantic-2", 40.7, -74.0), // New York
		mk("cs-caribbean", 18.5, -66.1),  // San Juan
		mk("cs-pacific-1", 37.8, -122.4), // San Francisco
		mk("cs-pacific-2", 35.0, 139.8),  // Yokohama
		mk("cs-asia-1", 1.3, 103.8),      // Singapore
		mk("cs-asia-2", 22.3, 114.2),     // Hong Kong
		mk("cs-indian", 19.1, 72.9),      // Mumbai
		mk("cs-med", 43.3, 5.4),          // Marseille
		mk("cs-southern", -33.9, 18.4),   // Cape Town
	}
}

// Options tunes repair timing.
type Options struct {
	// BaseDays is the fixed cost of one cable repair campaign.
	BaseDays float64
	// DaysPerRepeater adds time for each damaged repeater.
	DaysPerRepeater float64
}

// DefaultOptions matches the paper's "days to weeks" per damage point.
func DefaultOptions() Options { return Options{BaseDays: 7, DaysPerRepeater: 3} }

// Event is one completed repair.
type Event struct {
	Ship  string
	Cable string
	// Start and Done are days since the storm.
	Start, Done float64
	// NodesRestored is how many previously-unreachable nodes regained a
	// live cable when this repair completed.
	NodesRestored int
}

// Schedule is a full recovery plan.
type Schedule struct {
	Events []Event
	// MakespanDays is when the last repair completes.
	MakespanDays float64
	// RestoredAt maps fractional connectivity milestones (0.5, 0.9,
	// 0.95, 1.0 of the pre-storm connected node count) to days.
	RestoredAt map[float64]float64
}

// PlanRecovery greedily schedules the fleet: whenever a ship frees up, it
// takes the pending fault with the best marginal value rate — nodes that
// would regain connectivity divided by (transit + repair) time.
func PlanRecovery(net *topology.Network, faults []Fault, fleet []Ship, opts Options) (*Schedule, error) {
	if len(fleet) == 0 {
		return nil, errors.New("recovery: empty fleet")
	}
	if opts.BaseDays <= 0 {
		return nil, errors.New("recovery: base days must be positive")
	}
	for _, f := range faults {
		if f.Cable < 0 || f.Cable >= len(net.Cables) {
			return nil, fmt.Errorf("recovery: fault references cable %d", f.Cable)
		}
	}

	// Current cable state: everything with a fault is dead.
	dead := make([]bool, len(net.Cables))
	for _, f := range faults {
		dead[f.Cable] = true
	}
	baselineUnreachable := len(net.UnreachableNodes(dead))
	totalConnected := net.ConnectedNodeCount()
	preStormReachable := totalConnected // all nodes had live cables pre-storm

	type shipState struct {
		ship Ship
		free float64
		pos  geo.Coord
	}
	ships := make([]shipState, len(fleet))
	for i, s := range fleet {
		if s.SpeedKmPerDay <= 0 {
			return nil, fmt.Errorf("recovery: ship %q has no speed", s.Name)
		}
		ships[i] = shipState{ship: s, pos: s.Pos}
	}

	pending := append([]Fault(nil), faults...)
	sched := &Schedule{RestoredAt: map[float64]float64{}}

	for len(pending) > 0 {
		// Pick the ship that frees first.
		si := 0
		for i := range ships {
			if ships[i].free < ships[si].free {
				si = i
			}
		}
		ship := &ships[si]

		// Choose the fault with the best value rate for this ship.
		bestIdx, bestRate, bestDone := -1, -1.0, 0.0
		var bestRestored int
		for fi, f := range pending {
			transit := geo.Haversine(ship.pos, f.Location) / ship.ship.SpeedKmPerDay
			repair := opts.BaseDays + opts.DaysPerRepeater*float64(f.DamagedRepeaters)
			done := ship.free + transit + repair
			// Marginal reconnection value of restoring this cable now.
			dead[f.Cable] = false
			restored := 0
			if baselineUnreachable > 0 {
				restored = baselineUnreachable - len(net.UnreachableNodes(dead))
			}
			dead[f.Cable] = true
			rate := (float64(restored) + 0.1) / (transit + repair)
			if rate > bestRate {
				bestRate, bestIdx, bestDone, bestRestored = rate, fi, done, restored
			}
		}
		f := pending[bestIdx]
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)

		// Mark repaired for subsequent marginal-value estimates (they
		// assume earlier-scheduled work completes).
		dead[f.Cable] = false
		baselineUnreachable = len(net.UnreachableNodes(dead))
		_ = bestRestored
		sched.Events = append(sched.Events, Event{
			Ship:  ship.ship.Name,
			Cable: net.Cables[f.Cable].Name,
			Start: ship.free,
			Done:  bestDone,
		})
		ship.free = bestDone
		ship.pos = f.Location
		if bestDone > sched.MakespanDays {
			sched.MakespanDays = bestDone
		}
	}

	// Post-pass in completion order: per-event restoration counts and
	// milestone crossing times. (Assignment order differs from completion
	// order once several ships work in parallel.)
	sort.Slice(sched.Events, func(i, j int) bool { return sched.Events[i].Done < sched.Events[j].Done })
	for i := range dead {
		dead[i] = false
	}
	cableIdx := make(map[string]int, len(net.Cables))
	for ci := range net.Cables {
		cableIdx[net.Cables[ci].Name] = ci
	}
	for _, f := range faults {
		dead[f.Cable] = true
	}
	milestones := []float64{0.5, 0.9, 0.95, 1.0}
	unreachable := len(net.UnreachableNodes(dead))
	record := func(day float64) {
		restoredFrac := float64(preStormReachable-unreachable) / float64(preStormReachable)
		for _, m := range milestones {
			if _, done := sched.RestoredAt[m]; !done && restoredFrac >= m {
				sched.RestoredAt[m] = day
			}
		}
	}
	record(0)
	for ei := range sched.Events {
		e := &sched.Events[ei]
		dead[cableIdx[e.Cable]] = false
		now := len(net.UnreachableNodes(dead))
		e.NodesRestored = unreachable - now
		unreachable = now
		record(e.Done)
	}
	for _, m := range milestones {
		if _, ok := sched.RestoredAt[m]; !ok {
			sched.RestoredAt[m] = sched.MakespanDays
		}
	}
	return sched, nil
}

// RestorationCurve samples restored-connectivity fraction at the given
// day marks from the schedule's events.
func (s *Schedule) RestorationCurve(net *topology.Network, faults []Fault, days []float64) []float64 {
	dead := make([]bool, len(net.Cables))
	for _, f := range faults {
		dead[f.Cable] = true
	}
	total := net.ConnectedNodeCount()
	repairDay := map[string]float64{}
	for _, e := range s.Events {
		repairDay[e.Cable] = e.Done
	}
	out := make([]float64, len(days))
	for di, day := range days {
		cur := make([]bool, len(dead))
		copy(cur, dead)
		for ci := range net.Cables {
			if cur[ci] && repairDay[net.Cables[ci].Name] <= day {
				cur[ci] = false
			}
		}
		unreachable := len(net.UnreachableNodes(cur))
		out[di] = float64(total-unreachable) / float64(total)
	}
	return out
}

// MonthsToRestore converts a day count to months (30-day months), the
// paper's unit for "outages lasting several months".
func MonthsToRestore(days float64) float64 { return days / 30 }

// FleetSizeSweep returns the 95%-restoration time for fleets of various
// sizes built by truncating/extending the default fleet — the capacity
// ablation behind the paper's warning that repair capacity, not repair
// speed, dominates recovery from a global event.
func FleetSizeSweep(net *topology.Network, faults []Fault, sizes []int, opts Options) (map[int]float64, error) {
	base := DefaultFleet()
	out := make(map[int]float64, len(sizes))
	for _, n := range sizes {
		if n <= 0 {
			return nil, errors.New("recovery: fleet size must be positive")
		}
		fleet := make([]Ship, n)
		for i := 0; i < n; i++ {
			s := base[i%len(base)]
			s.Name = fmt.Sprintf("%s-%d", s.Name, i/len(base))
			fleet[i] = s
		}
		sched, err := PlanRecovery(net, faults, fleet, opts)
		if err != nil {
			return nil, err
		}
		t := sched.RestoredAt[0.95]
		if math.IsNaN(t) {
			t = sched.MakespanDays
		}
		out[n] = t
	}
	return out, nil
}
