package recovery

import (
	"math"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

func stormDamage(t *testing.T) (*topology.Network, []Fault, []bool) {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	net := w.Submarine
	rng := xrand.New(42)
	dead, err := failure.SampleCableDeaths(net, failure.S2(), 150, rng)
	if err != nil {
		t.Fatal(err)
	}
	faults, err := FaultsFrom(net, dead, 150, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) == 0 {
		t.Fatal("S2 storm produced no faults")
	}
	return net, faults, dead
}

func TestFaultsFromValidation(t *testing.T) {
	net, _, dead := stormDamage(t)
	rng := xrand.New(1)
	if _, err := FaultsFrom(net, make([]bool, 2), 150, 0.1, rng); err == nil {
		t.Error("want length error")
	}
	if _, err := FaultsFrom(net, dead, 150, 0, rng); err == nil {
		t.Error("want severity error")
	}
	if _, err := FaultsFrom(net, dead, 150, 1.5, rng); err == nil {
		t.Error("want severity error")
	}
}

func TestFaultsHaveDamage(t *testing.T) {
	net, faults, dead := stormDamage(t)
	deadCount := 0
	for _, d := range dead {
		if d {
			deadCount++
		}
	}
	if len(faults) != deadCount {
		t.Errorf("faults = %d, dead cables = %d", len(faults), deadCount)
	}
	for _, f := range faults {
		if f.DamagedRepeaters < 1 {
			t.Fatalf("fault on %s has no damage", net.Cables[f.Cable].Name)
		}
	}
}

func TestPlanRecoveryBasics(t *testing.T) {
	net, faults, _ := stormDamage(t)
	sched, err := PlanRecovery(net, faults, DefaultFleet(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != len(faults) {
		t.Fatalf("events = %d, faults = %d", len(sched.Events), len(faults))
	}
	if sched.MakespanDays <= 0 {
		t.Error("zero makespan")
	}
	// Events sorted by completion, each with sane times.
	prev := 0.0
	for _, e := range sched.Events {
		if e.Done < e.Start {
			t.Fatalf("event %q finishes before it starts", e.Cable)
		}
		if e.Done < prev {
			t.Fatal("events not sorted by completion")
		}
		prev = e.Done
	}
	// Milestones are monotone in threshold.
	if sched.RestoredAt[0.5] > sched.RestoredAt[0.95] {
		t.Errorf("milestones inverted: %v", sched.RestoredAt)
	}
	if sched.RestoredAt[1.0] > sched.MakespanDays+1e-9 {
		t.Errorf("full restoration after makespan: %v > %v", sched.RestoredAt[1.0], sched.MakespanDays)
	}
	// A storm-scale outage takes a long time with a realistic fleet — the
	// paper's "several months" concern.
	if MonthsToRestore(sched.MakespanDays) < 1 {
		t.Errorf("makespan = %v days; storm-scale repair should take months", sched.MakespanDays)
	}
}

func TestPlanRecoveryValidation(t *testing.T) {
	net, faults, _ := stormDamage(t)
	if _, err := PlanRecovery(net, faults, nil, DefaultOptions()); err == nil {
		t.Error("want empty fleet error")
	}
	opts := DefaultOptions()
	opts.BaseDays = 0
	if _, err := PlanRecovery(net, faults, DefaultFleet(), opts); err == nil {
		t.Error("want base days error")
	}
	bad := []Fault{{Cable: 99999}}
	if _, err := PlanRecovery(net, bad, DefaultFleet(), DefaultOptions()); err == nil {
		t.Error("want fault index error")
	}
	fleet := DefaultFleet()
	fleet[0].SpeedKmPerDay = 0
	if _, err := PlanRecovery(net, faults, fleet, DefaultOptions()); err == nil {
		t.Error("want ship speed error")
	}
}

func TestBiggerFleetFinishesFaster(t *testing.T) {
	net, faults, _ := stormDamage(t)
	times, err := FleetSizeSweep(net, faults, []int{2, 10, 40}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !(times[40] <= times[10] && times[10] <= times[2]) {
		t.Errorf("restoration time should fall with fleet size: %v", times)
	}
	if times[2] <= 0 {
		t.Error("zero restoration time")
	}
	if _, err := FleetSizeSweep(net, faults, []int{0}, DefaultOptions()); err == nil {
		t.Error("want size error")
	}
}

func TestRestorationCurveMonotone(t *testing.T) {
	net, faults, _ := stormDamage(t)
	sched, err := PlanRecovery(net, faults, DefaultFleet(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	days := []float64{0, 10, 30, 60, 120, 240, 480, sched.MakespanDays}
	curve := sched.RestorationCurve(net, faults, days)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Fatalf("restoration curve not monotone at %v days", days[i])
		}
	}
	if math.Abs(curve[len(curve)-1]-1) > 1e-9 {
		t.Errorf("restoration at makespan = %v, want 1", curve[len(curve)-1])
	}
	if curve[0] >= 1 {
		t.Error("restoration complete at day 0 despite faults")
	}
}

func TestSchedulerPrioritisesReconnection(t *testing.T) {
	// Two faults: one isolates many nodes, one is redundant. The valuable
	// repair should complete first when one ship handles both.
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	net := w.Submarine

	// Find a cable whose death isolates nodes, and one that doesn't.
	var valuable, redundant = -1, -1
	dead := make([]bool, len(net.Cables))
	for ci := range net.Cables {
		dead[ci] = true
		iso := len(net.UnreachableNodes(dead))
		dead[ci] = false
		if iso > 0 && valuable < 0 {
			valuable = ci
		}
		if iso == 0 && redundant < 0 {
			redundant = ci
		}
		if valuable >= 0 && redundant >= 0 {
			break
		}
	}
	if valuable < 0 || redundant < 0 {
		t.Skip("network lacks the needed cable mix")
	}
	faults := []Fault{
		{Cable: redundant, DamagedRepeaters: 1},
		{Cable: valuable, DamagedRepeaters: 1},
	}
	fleet := DefaultFleet()[:1]
	sched, err := PlanRecovery(net, faults, fleet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sched.Events[0].Cable != net.Cables[valuable].Name {
		t.Errorf("first repair = %q, want the isolating cable %q",
			sched.Events[0].Cable, net.Cables[valuable].Name)
	}
	if sched.Events[0].NodesRestored == 0 {
		t.Error("valuable repair restored no nodes")
	}
}

func TestMonthsToRestore(t *testing.T) {
	if MonthsToRestore(90) != 3 {
		t.Errorf("90 days = %v months", MonthsToRestore(90))
	}
}

func TestDefaultFleetSane(t *testing.T) {
	fleet := DefaultFleet()
	if len(fleet) < 5 {
		t.Fatal("fleet too small")
	}
	seen := map[string]bool{}
	for _, s := range fleet {
		if seen[s.Name] {
			t.Errorf("duplicate ship %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Pos.Validate(); err != nil {
			t.Errorf("ship %q position: %v", s.Name, err)
		}
		if s.SpeedKmPerDay <= 0 {
			t.Errorf("ship %q speed", s.Name)
		}
	}
}
