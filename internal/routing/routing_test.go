package routing

import (
	"errors"
	"math"
	"strings"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/geo"
	"gicnet/internal/topology"
)

func subNet(t *testing.T) *topology.Network {
	t.Helper()
	w, err := dataset.Default()
	if err != nil {
		t.Fatal(err)
	}
	return w.Submarine
}

func TestDefaultDemandsShape(t *testing.T) {
	ds := DefaultDemands()
	if len(ds) != 30 { // 6 regions, ordered pairs
		t.Fatalf("demands = %d, want 30", len(ds))
	}
	total := 0.0
	for _, d := range ds {
		if d.From == d.To {
			t.Error("intra-region demand present")
		}
		if d.Volume <= 0 {
			t.Errorf("demand %v-%v volume %v", d.From, d.To, d.Volume)
		}
		total += d.Volume
	}
	if total <= 0 || total > 1 {
		t.Errorf("total demand = %v", total)
	}
	// deterministic ordering
	ds2 := DefaultDemands()
	for i := range ds {
		if ds[i] != ds2[i] {
			t.Fatal("demand ordering not deterministic")
		}
	}
}

func TestRouteIntactNetwork(t *testing.T) {
	net := subNet(t)
	rep, err := Route(net, DefaultDemands(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StrandedFrac() > 0.01 {
		t.Errorf("intact network stranded %v of demand", rep.StrandedFrac())
	}
	loaded := 0
	for _, l := range rep.SegmentLoad {
		if l > 0 {
			loaded++
		}
	}
	if loaded == 0 {
		t.Fatal("no segment carries load")
	}
}

func TestRouteDeathVectorValidation(t *testing.T) {
	net := subNet(t)
	if _, err := Route(net, DefaultDemands(), make([]bool, 3)); err == nil {
		t.Error("want length mismatch error")
	}
}

func TestRouteTotalFailureStrandsEverything(t *testing.T) {
	net := subNet(t)
	dead := make([]bool, len(net.Cables))
	for i := range dead {
		dead[i] = true
	}
	rep, err := Route(net, DefaultDemands(), dead)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.StrandedFrac()-1) > 1e-9 {
		t.Errorf("stranded = %v, want 1", rep.StrandedFrac())
	}
}

func TestNewYorkFailureShiftsLoadWest(t *testing.T) {
	// The §5.5 scenario: kill every cable landing in the New York area
	// and watch transatlantic demand shift onto other paths.
	net := subNet(t)
	var nyNodes []int
	for i, nd := range net.Nodes {
		if strings.Contains(nd.Name, "new-york") || strings.Contains(nd.Name, "long-island") ||
			strings.Contains(nd.Name, "wall-nj") {
			nyNodes = append(nyNodes, i)
		}
	}
	if len(nyNodes) == 0 {
		t.Fatal("no NY landing points")
	}
	dead := make([]bool, len(net.Cables))
	for _, ci := range net.CablesTouching(nyNodes) {
		dead[ci] = true
	}

	before, err := Route(net, DefaultDemands(), nil)
	if err != nil {
		t.Fatal(err)
	}
	after, err := Route(net, DefaultDemands(), dead)
	if err != nil {
		t.Fatal(err)
	}
	// Traffic still mostly routable (alternate paths exist)...
	if after.StrandedFrac() > 0.3 {
		t.Errorf("stranded after NY failure = %v", after.StrandedFrac())
	}
	// ...but load shifted onto surviving cables.
	shifts, err := CompareLoads(net, before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(shifts) == 0 {
		t.Fatal("no cable gained load after NY failure")
	}
	// The biggest gainers must not be NY cables (they are dead).
	deadNames := map[string]bool{}
	for ci, d := range dead {
		if d {
			deadNames[net.Cables[ci].Name] = true
		}
	}
	for _, s := range shifts[:min(5, len(shifts))] {
		if deadNames[s.Cable] {
			t.Errorf("dead cable %q gained load", s.Cable)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCompareLoadsMismatch(t *testing.T) {
	net := subNet(t)
	a := &Report{SegmentLoad: []float64{1}, SegmentCable: []int{0}}
	b := &Report{SegmentLoad: []float64{1, 2}, SegmentCable: []int{0, 0}}
	if _, err := CompareLoads(net, a, b); err == nil {
		t.Error("want shape error")
	}
}

func TestShiftRatio(t *testing.T) {
	if r := (Shift{Before: 2, After: 3}).Ratio(); math.Abs(r-1.5) > 1e-12 {
		t.Errorf("ratio = %v", r)
	}
	if r := (Shift{Before: 0, After: 0}).Ratio(); r != 1 {
		t.Errorf("0/0 ratio = %v", r)
	}
	if r := (Shift{Before: 0, After: 1}).Ratio(); r < 1e8 {
		t.Errorf("new-load ratio = %v", r)
	}
}

func TestOverloadedCables(t *testing.T) {
	shifts := []Shift{
		{Cable: "a", Before: 1, After: 3},   // 3x
		{Cable: "b", Before: 1, After: 1.5}, // 1.5x
		{Cable: "c", Before: 0, After: 5},   // fresh load: not "overloaded"
	}
	got := OverloadedCables(shifts, 2)
	if len(got) != 1 || got[0].Cable != "a" {
		t.Errorf("overloaded = %v", got)
	}
}

func TestRouteSyntheticTriangle(t *testing.T) {
	// Three regions, direct path vs long detour: intact routing uses the
	// short edge; killing it diverts to the detour.
	net := &topology.Network{
		Name: "tri",
		Nodes: []topology.Node{
			{Name: "na", Coord: geo.Coord{Lat: 41, Lon: -74}, HasCoord: true},
			{Name: "eu", Coord: geo.Coord{Lat: 51, Lon: 0}, HasCoord: true},
			{Name: "sa", Coord: geo.Coord{Lat: -23, Lon: -46}, HasCoord: true},
		},
		Cables: []topology.Cable{
			{Name: "direct", Segments: []topology.Segment{{A: 0, B: 1, LengthKm: 6000}}},
			{Name: "na-sa", Segments: []topology.Segment{{A: 0, B: 2, LengthKm: 8000}}},
			{Name: "sa-eu", Segments: []topology.Segment{{A: 2, B: 1, LengthKm: 9000}}},
		},
	}
	demand := []Demand{{From: geo.RegionNorthAmerica, To: geo.RegionEurope, Volume: 1}}
	before, err := Route(net, demand, nil)
	if err != nil {
		t.Fatal(err)
	}
	if before.SegmentLoad[0] != 1 || before.SegmentLoad[1] != 0 {
		t.Errorf("intact loads = %v", before.SegmentLoad)
	}
	after, err := Route(net, demand, []bool{true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if after.SegmentLoad[1] != 1 || after.SegmentLoad[2] != 1 {
		t.Errorf("detour loads = %v", after.SegmentLoad)
	}
	if after.StrandedFrac() != 0 {
		t.Errorf("stranded = %v", after.StrandedFrac())
	}
	shifts, err := CompareLoads(net, before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(shifts) != 2 {
		t.Errorf("shifts = %v", shifts)
	}
}

// TestRegionSharesZeroDemand is the regression for the zero-demand edge:
// a demand matrix with no positive volume must yield the typed
// ErrZeroDemand instead of NaN shares.
func TestRegionSharesZeroDemand(t *testing.T) {
	for _, demands := range [][]Demand{
		nil,
		{},
		{{From: geo.RegionEurope, To: geo.RegionAsia, Volume: 0}},
		{{From: geo.RegionEurope, To: geo.RegionAsia, Volume: -3}},
	} {
		shares, err := RegionShares(demands)
		if !errors.Is(err, ErrZeroDemand) {
			t.Fatalf("demands %v: err = %v, want ErrZeroDemand", demands, err)
		}
		if shares != nil {
			t.Fatalf("demands %v: got shares %v alongside the error", demands, shares)
		}
	}
}

// TestRegionSharesNormalized checks the happy path: shares sum to one,
// every share is finite and positive, and negative/zero rows are ignored.
func TestRegionSharesNormalized(t *testing.T) {
	demands := append(DefaultDemands(), Demand{From: geo.RegionOceania, To: geo.RegionAsia, Volume: -1})
	shares, err := RegionShares(demands)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for r, s := range shares {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("region %s share %v not a positive finite number", r, s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

// TestDefaultDemandsPinnedOrder pins the demand matrix element-by-element.
// DefaultDemands feeds the serving and cross-layer fingerprint paths, so
// its output must come from source order, never from map iteration; this
// test locks the exact sequence (sorted by From, then To, over the string
// region names) and the exact weights so a regression back to a map-built
// table cannot land silently.
func TestDefaultDemandsPinnedOrder(t *testing.T) {
	ds := DefaultDemands()
	if len(ds) != 30 {
		t.Fatalf("demands = %d, want 30", len(ds))
	}
	// Sorted region order is alphabetical on the string values.
	regions := []geo.Region{
		geo.RegionAfrica, geo.RegionAsia, geo.RegionEurope,
		geo.RegionNorthAmerica, geo.RegionOceania, geo.RegionSouthAmerica,
	}
	weights := map[geo.Region]float64{
		geo.RegionNorthAmerica: 0.30, geo.RegionEurope: 0.27, geo.RegionAsia: 0.25,
		geo.RegionSouthAmerica: 0.08, geo.RegionAfrica: 0.05, geo.RegionOceania: 0.05,
	}
	i := 0
	total := 0.0
	for _, from := range regions {
		for _, to := range regions {
			if from == to {
				continue
			}
			want := Demand{From: from, To: to, Volume: weights[from] * weights[to]}
			if ds[i] != want {
				t.Fatalf("demand[%d] = %+v, want %+v", i, ds[i], want)
			}
			total += ds[i].Volume
			i++
		}
	}
	// (sum w)^2 - sum w^2 with sum w = 1: 1 - 0.2368.
	if math.Abs(total-0.7632) > 1e-12 {
		t.Fatalf("total volume = %v, want 0.7632", total)
	}
}
