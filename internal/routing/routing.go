// Package routing models inter-region traffic and its re-routing after
// cable failures — the paper's §5.5 observation that the Internet, unlike
// regional power grids, shifts load globally: "when all submarine cables
// connecting to NY fail, there will be significant shifts in BGP paths and
// potential overload in Internet cables in California".
//
// The model is deliberately coarse: demands between continental regions,
// shortest-path routing over cable segments, and per-segment load
// accounting. It answers where load goes and what gets overloaded, not
// packet-level behaviour.
package routing

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"gicnet/internal/geo"
	"gicnet/internal/topology"
)

// Demand is one directed region-to-region traffic entry. Units are
// arbitrary (normalised shares).
type Demand struct {
	From, To geo.Region
	Volume   float64
}

// ErrZeroDemand is returned when a demand matrix carries no positive
// volume. Every share in this package is a fraction of total demand, so an
// all-zero (or empty) matrix has no well-defined shares; callers get this
// typed error instead of NaN.
var ErrZeroDemand = errors.New("routing: demand matrix has no positive volume")

// RegionShares returns each region's share of total outbound demand
// volume, normalised to sum to 1 over the regions that appear. Demands
// with non-positive volume contribute nothing; if no demand has positive
// volume the shares would be 0/0, so it returns ErrZeroDemand instead.
func RegionShares(demands []Demand) (map[geo.Region]float64, error) {
	total := 0.0
	out := map[geo.Region]float64{}
	for _, d := range demands {
		if d.Volume <= 0 {
			continue
		}
		total += d.Volume
		out[d.From] += d.Volume
	}
	if total <= 0 {
		return nil, ErrZeroDemand
	}
	for r := range out {
		out[r] /= total
	}
	return out, nil
}

// DefaultDemands synthesises a demand matrix over the inhabited regions,
// weighted by rough traffic shares (North America and Europe dominate
// inter-regional volume; intra-region traffic does not cross the
// submarine network and is excluded).
func DefaultDemands() []Demand {
	// A fixed-order table, deliberately not a map: demand synthesis feeds
	// the serving and cross-layer fingerprint paths, so element order must
	// come from source order, never from map iteration.
	shares := []struct {
		region geo.Region
		w      float64
	}{
		{geo.RegionNorthAmerica, 0.30},
		{geo.RegionEurope, 0.27},
		{geo.RegionAsia, 0.25},
		{geo.RegionSouthAmerica, 0.08},
		{geo.RegionAfrica, 0.05},
		{geo.RegionOceania, 0.05},
	}
	var out []Demand
	for _, a := range shares {
		for _, b := range shares {
			if a.region == b.region {
				continue
			}
			out = append(out, Demand{From: a.region, To: b.region, Volume: a.w * b.w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// segGraph is a weighted adjacency over cable segments.
type segGraph struct {
	net *topology.Network
	// adj[node] lists (segment global index, other node).
	adj [][]segRef
	// segs flattens all cable segments with owner cable index.
	segs []flatSeg
}

type segRef struct {
	seg   int
	other int
}

type flatSeg struct {
	cable    int
	a, b     int
	lengthKm float64
}

func buildSegGraph(net *topology.Network) *segGraph {
	g := &segGraph{net: net, adj: make([][]segRef, len(net.Nodes))}
	for ci, c := range net.Cables {
		for _, s := range c.Segments {
			si := len(g.segs)
			g.segs = append(g.segs, flatSeg{cable: ci, a: s.A, b: s.B, lengthKm: s.LengthKm})
			g.adj[s.A] = append(g.adj[s.A], segRef{si, s.B})
			if s.A != s.B {
				g.adj[s.B] = append(g.adj[s.B], segRef{si, s.A})
			}
		}
	}
	return g
}

// Report is the result of routing a demand set over a (possibly damaged)
// network.
type Report struct {
	// SegmentLoad is total volume per flattened segment.
	SegmentLoad []float64
	// SegmentCable maps flattened segments back to cable indices.
	SegmentCable []int
	// Stranded is the demand volume with no surviving path.
	Stranded float64
	// Total is the full demand volume.
	Total float64
}

// StrandedFrac is the share of demand left unroutable.
func (r *Report) StrandedFrac() float64 {
	if r.Total == 0 {
		return 0
	}
	return r.Stranded / r.Total
}

// Route routes every demand along the shortest surviving path between the
// regions' gateway nodes. cableDead may be nil (intact network). Each
// region's gateway set is its up-to-8 highest-degree landing points with
// coordinates; demand splits evenly across gateway pairs that can reach
// each other.
func Route(net *topology.Network, demands []Demand, cableDead []bool) (*Report, error) {
	if cableDead != nil && len(cableDead) != len(net.Cables) {
		return nil, errors.New("routing: death vector length mismatch")
	}
	g := buildSegGraph(net)
	gateways := gatewaysByRegion(net)

	rep := &Report{
		SegmentLoad:  make([]float64, len(g.segs)),
		SegmentCable: make([]int, len(g.segs)),
	}
	for i, s := range g.segs {
		rep.SegmentCable[i] = s.cable
	}

	alive := func(si int) bool {
		return cableDead == nil || !cableDead[g.segs[si].cable]
	}

	for _, d := range demands {
		rep.Total += d.Volume
		from := gateways[d.From]
		to := gateways[d.To]
		if len(from) == 0 || len(to) == 0 {
			rep.Stranded += d.Volume
			continue
		}
		// Split demand across source gateways; each routes to its nearest
		// reachable destination gateway. Shares of gateways with no
		// surviving path spill over to the gateways that still have one —
		// the BGP-reconvergence analogue that concentrates load on
		// survivors (§5.5).
		per := d.Volume / float64(len(from))
		type routed struct {
			segs []int
		}
		var ok []routed
		failedShares := 0.0
		for _, src := range from {
			segs, found := shortestPath(g, src, to, alive)
			if !found {
				failedShares += per
				continue
			}
			ok = append(ok, routed{segs})
		}
		if len(ok) == 0 {
			rep.Stranded += d.Volume
			continue
		}
		share := per + failedShares/float64(len(ok))
		for _, r := range ok {
			for _, si := range r.segs {
				rep.SegmentLoad[si] += share
			}
		}
	}
	return rep, nil
}

// gatewaysByRegion picks up to 8 gateway landing points per region: the
// region's highest-degree *cities* (degree summed across a city's landing
// point instances), represented by each city's best-connected instance.
// City aggregation matters: hubs like New York spread their cables over
// several nearby landing stations.
func gatewaysByRegion(net *topology.Network) map[geo.Region][]int {
	deg := make(map[int]int)
	for _, c := range net.Cables {
		for _, s := range c.Segments {
			deg[s.A]++
			deg[s.B]++
		}
	}
	type city struct {
		total int
		best  int // node index of highest-degree instance
	}
	cities := map[geo.Region]map[string]*city{}
	for i, nd := range net.Nodes {
		if !nd.HasCoord || deg[i] == 0 {
			continue
		}
		r := geo.RegionOf(nd.Coord)
		key := cityKey(nd.Name)
		if cities[r] == nil {
			cities[r] = map[string]*city{}
		}
		c := cities[r][key]
		if c == nil {
			c = &city{best: i}
			cities[r][key] = c
		}
		c.total += deg[i]
		if deg[i] > deg[c.best] || (deg[i] == deg[c.best] && i < c.best) {
			c.best = i
		}
	}
	byRegion := map[geo.Region][]int{}
	for r, cs := range cities {
		keys := make([]string, 0, len(cs))
		for k := range cs {
			//gicnet:allow crossdet collected keys are sorted by (total degree, key) before any use, so map order cannot leak
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := cs[keys[i]], cs[keys[j]]
			if a.total != b.total {
				return a.total > b.total
			}
			return keys[i] < keys[j]
		})
		if len(keys) > 8 {
			keys = keys[:8]
		}
		for _, k := range keys {
			byRegion[r] = append(byRegion[r], cs[k].best)
		}
	}
	return byRegion
}

// cityKey strips the trailing instance index from a node name
// ("us-new-york-3" -> "us-new-york").
func cityKey(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '-' {
			return name[:i]
		}
		if name[i] < '0' || name[i] > '9' {
			break
		}
	}
	return name
}

// pqItem is a priority queue entry for Dijkstra.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// shortestPath runs Dijkstra from src to the nearest member of dsts over
// alive segments, returning the segment indices of the path.
func shortestPath(g *segGraph, src int, dsts []int, alive func(int) bool) ([]int, bool) {
	isDst := make(map[int]bool, len(dsts))
	for _, d := range dsts {
		isDst[d] = true
	}
	const inf = 1e18
	dist := make(map[int]float64, 256)
	prevSeg := make(map[int]int, 256)
	prevNode := make(map[int]int, 256)
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	visited := make(map[int]bool, 256)
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if visited[it.node] {
			continue
		}
		visited[it.node] = true
		if isDst[it.node] {
			// reconstruct
			var segs []int
			n := it.node
			for n != src {
				segs = append(segs, prevSeg[n])
				n = prevNode[n]
			}
			return segs, true
		}
		for _, ref := range g.adj[it.node] {
			if !alive(ref.seg) || visited[ref.other] {
				continue
			}
			nd := it.dist + g.segs[ref.seg].lengthKm
			cur, seen := dist[ref.other]
			if !seen {
				cur = inf
			}
			if nd < cur {
				dist[ref.other] = nd
				prevSeg[ref.other] = ref.seg
				prevNode[ref.other] = it.node
				heap.Push(q, pqItem{node: ref.other, dist: nd})
			}
		}
	}
	return nil, false
}

// Shift describes load change on one cable after failures.
type Shift struct {
	Cable  string
	Before float64
	After  float64
}

// Ratio returns after/before (inf-like 1e9 when load appeared on an
// unloaded cable).
func (s Shift) Ratio() float64 {
	if s.Before == 0 {
		if s.After == 0 {
			return 1
		}
		return 1e9
	}
	return s.After / s.Before
}

// CompareLoads aggregates per-segment loads to cables and returns the
// cables with increased load, biggest absolute increase first.
func CompareLoads(net *topology.Network, before, after *Report) ([]Shift, error) {
	if len(before.SegmentLoad) != len(after.SegmentLoad) {
		return nil, fmt.Errorf("routing: report shapes differ: %d vs %d",
			len(before.SegmentLoad), len(after.SegmentLoad))
	}
	perCableBefore := make([]float64, len(net.Cables))
	perCableAfter := make([]float64, len(net.Cables))
	for i := range before.SegmentLoad {
		perCableBefore[before.SegmentCable[i]] += before.SegmentLoad[i]
		perCableAfter[after.SegmentCable[i]] += after.SegmentLoad[i]
	}
	var out []Shift
	for ci := range net.Cables {
		if perCableAfter[ci] > perCableBefore[ci]+1e-12 {
			out = append(out, Shift{
				Cable:  net.Cables[ci].Name,
				Before: perCableBefore[ci],
				After:  perCableAfter[ci],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].After-out[i].Before > out[j].After-out[j].Before
	})
	return out, nil
}

// OverloadedCables returns the cables whose post-failure load exceeds
// headroom x their pre-failure load (only cables that carried load
// before count).
func OverloadedCables(shifts []Shift, headroom float64) []Shift {
	var out []Shift
	for _, s := range shifts {
		if s.Before > 0 && s.After > headroom*s.Before {
			out = append(out, s)
		}
	}
	return out
}
