package crosslayer

import (
	"fmt"
	"math"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/graph"
	"gicnet/internal/routing"
	"gicnet/internal/topology"
)

// fuzzReader consumes the fuzz byte stream, yielding zeros when dry.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// worldFromBytes decodes an arbitrary byte string into a (possibly
// degenerate) world: malformed AS homes, coordinate-free nodes, empty
// catalogs, zero-cable networks, zero-demand matrices.
func worldFromBytes(r *fuzzReader) (*topology.Network, *dataset.RouterCatalog, []routing.Demand) {
	numNodes := 1 + int(r.byte())%16
	net := &topology.Network{Name: "fuzz"}
	for i := 0; i < numNodes; i++ {
		lat := float64(int8(r.byte())) * 0.75 // [-96, 95.25]: sometimes invalid
		lon := float64(int8(r.byte())) * 1.5
		net.Nodes = append(net.Nodes, topology.Node{
			Name:     fmt.Sprintf("n%d", i),
			Coord:    geo.Coord{Lat: lat, Lon: lon},
			HasCoord: r.byte()%4 != 0,
			Country:  "xx",
		})
	}
	numCables := int(r.byte()) % 20 // may be zero
	for c := 0; c < numCables; c++ {
		cable := topology.Cable{Name: fmt.Sprintf("c%d", c), KnownLength: true}
		segs := 1 + int(r.byte())%3
		for s := 0; s < segs; s++ {
			cable.Segments = append(cable.Segments, topology.Segment{
				A:        int(r.byte()) % numNodes,
				B:        int(r.byte()) % numNodes, // self-loops welcome
				LengthKm: float64(r.byte()) * 40,
			})
		}
		net.Cables = append(net.Cables, cable)
	}
	numAS := int(r.byte()) % 12 // may be zero -> ErrNoASes
	cat := &dataset.RouterCatalog{}
	for a := 0; a < numAS; a++ {
		home := geo.Coord{
			Lat: float64(int8(r.byte())), // [-128, 127]: poles and invalid latitudes
			Lon: float64(int8(r.byte())) * 2,
		}
		cat.ASes = append(cat.ASes, dataset.AS{ASN: 64512 + a, Home: home, Routers: []geo.Coord{home}})
	}
	var demands []routing.Demand
	switch r.byte() % 4 {
	case 0:
		demands = nil // ErrZeroDemand
	case 1:
		demands = []routing.Demand{{From: geo.RegionEurope, To: geo.RegionAsia, Volume: 0}}
	default:
		demands = routing.DefaultDemands()
	}
	return net, cat, demands
}

// FuzzCableASAdjacency fuzzes the CSR builder and both scoring paths over
// degenerate worlds: Compile must never panic, and when it succeeds the
// scores must satisfy the structural invariants (bounded shares, pair
// counts monotone under growing dead sets, batched ≡ scalar).
func FuzzCableASAdjacency(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 10, 20, 1, 30, 40, 1, 5, 60, 2, 1, 0, 1, 100, 2, 3, 50, 80, 2})
	f.Add([]byte{15, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 19, 2, 0, 1, 255, 11, 127, 127})
	f.Add([]byte{8, 90, 0, 1, 45, 45, 1, 200, 100, 0, 250, 5, 2, 0, 1, 40, 1, 2, 80, 3, 90, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		net, cat, demands := worldFromBytes(r)
		x, err := Compile(net, cat, demands)
		if err != nil {
			return // degenerate world rejected with a typed error: fine
		}
		total := x.TotalASes()
		maxPairs := total * (total - 1) / 2

		check := func(label string, sc Score) {
			if sc.ReachablePairs < 0 || sc.ReachablePairs > maxPairs {
				t.Fatalf("%s: pairs %d outside [0, %d]", label, sc.ReachablePairs, maxPairs)
			}
			if sc.StrandedASes < 0 || sc.StrandedASes > total {
				t.Fatalf("%s: stranded ASes %d outside [0, %d]", label, sc.StrandedASes, total)
			}
			if sc.StrandedShare < -1e-9 || sc.StrandedShare > 1+1e-9 || math.IsNaN(sc.StrandedShare) {
				t.Fatalf("%s: stranded share %v outside [0, 1]", label, sc.StrandedShare)
			}
			if math.IsNaN(sc.DemandWeighted) {
				t.Fatalf("%s: demand-weighted is NaN", label)
			}
		}
		check("intact", x.Intact())

		var s Scratch
		s.Grow(x)
		numCables := len(net.Cables)
		dead := graph.NewBitset(numCables)

		// Grow the dead set one cable at a time, driven by input bytes:
		// reachable pairs must never increase, stranding never decrease.
		prev := x.ScoreDead(dead, &s)
		if !scoresBitIdentical(prev, x.Intact()) {
			t.Fatalf("empty mask score %+v != intact %+v", prev, x.Intact())
		}
		for ci := 0; ci < numCables; ci++ {
			if r.byte()%2 == 0 {
				continue
			}
			dead.Set(ci)
			sc := x.ScoreDead(dead, &s)
			check("grown", sc)
			if sc.ReachablePairs > prev.ReachablePairs {
				t.Fatalf("pairs grew %d -> %d after killing cable %d",
					prev.ReachablePairs, sc.ReachablePairs, ci)
			}
			if sc.StrandedASes < prev.StrandedASes {
				t.Fatalf("stranded shrank %d -> %d after killing cable %d",
					prev.StrandedASes, sc.StrandedASes, ci)
			}
			prev = sc
		}

		// All-dead mask.
		if numCables > 0 {
			dead.SetRange(0, numCables)
			check("all-dead", x.ScoreDead(dead, &s))
		}

		// Batched ≡ scalar on a single-trial block (needs a real plan).
		if numCables > 0 {
			plan, err := failure.Compile(net, failure.Uniform{P: 0.5}, 100)
			if err != nil {
				return
			}
			var batch failure.BatchScratch
			batch.Grow(plan)
			copy(batch.Row(0), dead)
			var out [1]Score
			x.ScoreBatch(&batch, 1, out[:], &s)
			want := x.ScoreDead(dead, &s)
			if !scoresBitIdentical(out[0], want) {
				t.Fatalf("batch %+v != scalar %+v", out[0], want)
			}
		}
	})
}
