// Package crosslayer scores physical cable failures at the logical layer:
// which AS pairs lose reachability and how many users are stranded when a
// trial's dead-cable set severs the topology. The paper stops at physical
// connectivity; Xaminer and Nautilus argue the metric that matters is
// cross-layer, and this package is the second consumer of the zero-alloc
// bitset trial kernel.
//
// The model compiles, once per world, a cable→AS-adjacency CSR:
//
//   - every distinct unordered node pair linked by at least one cable
//     segment becomes a pair-edge, carrying the sorted set of cables that
//     support it plus a (word, mask) projection of that set onto the
//     dead-cable bitset — a pair-edge is dead exactly when all of its
//     supporting cables are dead;
//   - every AS from the router catalog attaches to its nearest cable
//     node with coordinates (great-circle distance to the AS home, ties to
//     the lowest node index), weighted by the population latitude mass at
//     its home — AS user weights are normalised shares of world users;
//   - each attach node ("site") aggregates its ASes' counts, user shares,
//     and per-region user shares; the site with the largest user share is
//     the anchor, the proxy for "the Internet core".
//
// A trial score is then pure graph work: union alive pair-edges, count
// reachable AS pairs per component, and charge every user share outside
// the anchor's component as stranded.
//
// Determinism contract: a trial's Score depends only on that trial's dead
// bitset and the compiled index. Both scoring paths (ScoreDead and the
// 64-trial bitsliced ScoreBatch) reduce to the same canonical
// accumulation — sites visited in ascending node order, component slots
// in first-seen order, fixed-order float reductions — so equal partitions
// produce bit-identical Scores regardless of path, block boundaries, or
// worker count.
package crosslayer

import (
	"errors"
	"math"
	"sort"

	"gicnet/internal/dataset"
	"gicnet/internal/geo"
	"gicnet/internal/graph"
	"gicnet/internal/population"
	"gicnet/internal/routing"
	"gicnet/internal/topology"
)

// NumRegions is the number of report regions (geo.Regions()), fixed so
// Score can embed a flat array and stay allocation-free.
const NumRegions = 7

// Typed compile errors, so callers can distinguish unusable worlds from
// programming mistakes.
var (
	// ErrNoASes means the router catalog is nil or empty.
	ErrNoASes = errors.New("crosslayer: router catalog has no ASes")
	// ErrNoSites means no network node both touches a cable and has
	// coordinates, so ASes cannot be attached (the ITU star network, for
	// example, has coordinate-free nodes).
	ErrNoSites = errors.New("crosslayer: no located cable nodes to attach ASes to")
)

// Score is one trial's cross-layer damage summary.
type Score struct {
	// ReachablePairs counts unordered AS pairs that can still reach each
	// other over alive cables (pairs attached to the same site always can).
	ReachablePairs int64
	// StrandedASes counts ASes cut off from the anchor component.
	StrandedASes int64
	// StrandedShare is the user share cut off from the anchor component,
	// in [0, 1].
	StrandedShare float64
	// RegionStranded is the stranded user share by report region
	// (geo.Regions() order), each a fraction of total world users.
	RegionStranded [NumRegions]float64
	// DemandWeighted reweights RegionStranded by each region's share of
	// outbound inter-region traffic demand.
	DemandWeighted float64
}

// Index is the compiled cable→AS-adjacency CSR for one network and router
// catalog. It is immutable after Compile and safe to share across
// goroutines; all mutable scoring state lives in Scratch.
type Index struct {
	net      *topology.Network
	numNodes int
	words    int // dead-bitset words, graph.BitsetWords(len(net.Cables))

	// Pair-edges, a < b, sorted by (a, b).
	edgeA, edgeB []int32
	// Supporting cables per edge: cableList[cableStart[e]:cableStart[e+1]],
	// ascending.
	cableStart []int32
	cableList  []int32
	// Word projection per edge: the edge is dead iff for every row k in
	// [wordStart[e], wordStart[e+1]) dead[wordIdx[k]] covers wordMask[k].
	wordStart []int32
	wordIdx   []int32
	wordMask  []uint64
	// Reverse CSR: cableEdges[cableEdgeStart[c]:cableEdgeStart[c+1]] lists
	// the pair-edges cable c supports, ascending.
	cableEdgeStart []int32
	cableEdges     []int32

	// Sites: attach nodes in ascending node order, with aggregated AS
	// counts, user shares, and a per-region user-share CSR.
	sites       []int32
	siteCount   []int64
	siteUsers   []float64
	regionStart []int32
	regionIdx   []int32
	regionMass  []float64
	siteOf      []int32 // node -> site index, -1 when the node has no ASes

	anchor      int32 // node index of the largest-user site
	totalAS     int64
	totalUsers  float64
	regionTotal [NumRegions]float64
	demand      [NumRegions]float64

	intact Score
}

// Network returns the network the index was compiled for. Scoring is only
// valid against dead bitsets drawn for this exact network.
func (x *Index) Network() *topology.Network { return x.net }

// Intact returns the score of the undamaged network, computed by the same
// scoring routine (so comparisons against it are bit-consistent).
func (x *Index) Intact() Score { return x.intact }

// Sites returns the number of attach nodes carrying at least one AS.
func (x *Index) Sites() int { return len(x.sites) }

// Edges returns the number of compiled pair-edges.
func (x *Index) Edges() int { return len(x.edgeA) }

// TotalASes returns the number of attached ASes.
func (x *Index) TotalASes() int64 { return x.totalAS }

// SiteNode returns the node index of a site (0 <= site < Sites()).
// Test/diagnostic accessor; not for hot paths.
func (x *Index) SiteNode(site int) int32 { return x.sites[site] }

// SiteOf returns the site index of a node, or -1 when no AS attaches
// there. Test/diagnostic accessor; not for hot paths.
func (x *Index) SiteOf(node int) int32 { return x.siteOf[node] }

// Compile builds the index for net from the catalog's AS presences and
// the demand matrix's region shares. Demands feed only the DemandWeighted
// reweighting; an all-zero matrix yields routing.ErrZeroDemand.
func Compile(net *topology.Network, cat *dataset.RouterCatalog, demands []routing.Demand) (*Index, error) {
	if net == nil {
		return nil, errors.New("crosslayer: nil network")
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if cat == nil || len(cat.ASes) == 0 {
		return nil, ErrNoASes
	}
	shares, err := routing.RegionShares(demands)
	if err != nil {
		return nil, err
	}

	numNodes := len(net.Nodes)
	x := &Index{
		net:      net,
		numNodes: numNodes,
		words:    graph.BitsetWords(len(net.Cables)),
	}

	// Candidate attach nodes: on a cable and located.
	touches := make([]bool, numNodes)
	for ci := range net.Cables {
		for _, s := range net.Cables[ci].Segments {
			touches[s.A] = true
			touches[s.B] = true
		}
	}
	var cand []int32
	for i := range net.Nodes {
		if touches[i] && net.Nodes[i].HasCoord {
			cand = append(cand, int32(i))
		}
	}
	if len(cand) == 0 {
		return nil, ErrNoSites
	}

	x.buildEdges(net)
	x.attachASes(cat, cand)

	regionOrder := geo.Regions()
	for i, r := range regionOrder {
		x.demand[i] = shares[r]
	}

	// Intact baseline through the real scoring path.
	var s Scratch
	s.Grow(x)
	x.intact = x.ScoreDead(make(graph.Bitset, x.words), &s)
	return x, nil
}

// buildEdges compiles the pair-edge CSRs from cable segments. Self-loop
// segments connect nothing and are dropped.
func (x *Index) buildEdges(net *topology.Network) {
	type pairCable struct {
		key   uint64 // a<<32 | b with a < b
		cable int32
	}
	var pairs []pairCable
	for ci := range net.Cables {
		for _, s := range net.Cables[ci].Segments {
			a, b := s.A, s.B
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, pairCable{uint64(a)<<32 | uint64(b), int32(ci)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].key != pairs[j].key {
			return pairs[i].key < pairs[j].key
		}
		return pairs[i].cable < pairs[j].cable
	})

	x.cableStart = append(x.cableStart, 0)
	x.wordStart = append(x.wordStart, 0)
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].key == pairs[i].key {
			j++
		}
		x.edgeA = append(x.edgeA, int32(pairs[i].key>>32))
		x.edgeB = append(x.edgeB, int32(pairs[i].key&0xffffffff))
		lastCable := int32(-1)
		lastWord := int32(-1)
		for k := i; k < j; k++ {
			c := pairs[k].cable
			if c == lastCable {
				continue
			}
			lastCable = c
			x.cableList = append(x.cableList, c)
			w, bit := c>>6, uint64(1)<<(uint(c)&63)
			if w == lastWord {
				x.wordMask[len(x.wordMask)-1] |= bit
			} else {
				lastWord = w
				x.wordIdx = append(x.wordIdx, w)
				x.wordMask = append(x.wordMask, bit)
			}
		}
		x.cableStart = append(x.cableStart, int32(len(x.cableList)))
		x.wordStart = append(x.wordStart, int32(len(x.wordIdx)))
		i = j
	}

	// Reverse CSR, cable -> supported edges, edges ascending per cable.
	numCables := len(net.Cables)
	counts := make([]int32, numCables+1)
	for _, c := range x.cableList {
		counts[c+1]++
	}
	for c := 0; c < numCables; c++ {
		counts[c+1] += counts[c]
	}
	x.cableEdgeStart = counts
	x.cableEdges = make([]int32, len(x.cableList))
	fill := make([]int32, numCables)
	for e := 0; e < len(x.edgeA); e++ {
		for k := x.cableStart[e]; k < x.cableStart[e+1]; k++ {
			c := x.cableList[k]
			x.cableEdges[x.cableEdgeStart[c]+fill[c]] = int32(e)
			fill[c]++
		}
	}
}

// attachASes maps every AS to its nearest candidate node and aggregates
// per-site counts, user shares, and region shares. Nearness uses the
// spherical law of cosines (monotone in great-circle distance, so the
// argmin matches geo.Haversine), ties to the lowest node index.
func (x *Index) attachASes(cat *dataset.RouterCatalog, cand []int32) {
	net := x.net
	sinLat := make([]float64, len(cand))
	cosLat := make([]float64, len(cand))
	lon := make([]float64, len(cand))
	for i, ni := range cand {
		la := net.Nodes[ni].Coord.Lat * math.Pi / 180
		sinLat[i] = math.Sin(la)
		cosLat[i] = math.Cos(la)
		lon[i] = net.Nodes[ni].Coord.Lon * math.Pi / 180
	}

	weights := make([]float64, len(cat.ASes))
	totalRaw := 0.0
	for i := range cat.ASes {
		weights[i] = population.DensityAt(cat.ASes[i].Home.Lat)
		totalRaw += weights[i]
	}
	if !(totalRaw > 0) {
		// Degenerate catalog (all homes at zero-density latitudes, e.g.
		// fuzz inputs at the poles): fall back to uniform user weights.
		for i := range weights {
			weights[i] = 1
		}
		totalRaw = float64(len(weights))
	}

	regionOrder := geo.Regions()
	regionOf := make(map[geo.Region]int, len(regionOrder))
	for i, r := range regionOrder {
		regionOf[r] = i
	}

	count := make([]int64, x.numNodes)
	users := make([]float64, x.numNodes)
	regionAcc := make([][NumRegions]float64, x.numNodes)
	for i := range cat.ASes {
		home := cat.ASes[i].Home
		la := home.Lat * math.Pi / 180
		lo := home.Lon * math.Pi / 180
		sa, ca := math.Sin(la), math.Cos(la)
		best, bestCos := 0, -2.0
		for j := range cand {
			c := sa*sinLat[j] + ca*cosLat[j]*math.Cos(lo-lon[j])
			if c > bestCos {
				bestCos = c
				best = j
			}
		}
		node := cand[best]
		share := weights[i] / totalRaw
		count[node]++
		users[node] += share
		if ri, ok := regionOf[geo.RegionOf(home)]; ok {
			regionAcc[node][ri] += share
		}
	}

	x.siteOf = make([]int32, x.numNodes)
	for i := range x.siteOf {
		x.siteOf[i] = -1
	}
	x.regionStart = append(x.regionStart, 0)
	for ni := 0; ni < x.numNodes; ni++ {
		if count[ni] == 0 {
			continue
		}
		x.siteOf[ni] = int32(len(x.sites))
		x.sites = append(x.sites, int32(ni))
		x.siteCount = append(x.siteCount, count[ni])
		x.siteUsers = append(x.siteUsers, users[ni])
		for ri := 0; ri < NumRegions; ri++ {
			if m := regionAcc[ni][ri]; m != 0 {
				x.regionIdx = append(x.regionIdx, int32(ri))
				x.regionMass = append(x.regionMass, m)
			}
		}
		x.regionStart = append(x.regionStart, int32(len(x.regionIdx)))
	}

	// Totals in the exact order the anchor-component accumulation visits
	// them, so a fully connected trial strands exactly zero.
	bestSite := 0
	for si := range x.sites {
		x.totalAS += x.siteCount[si]
		x.totalUsers += x.siteUsers[si]
		for k := x.regionStart[si]; k < x.regionStart[si+1]; k++ {
			x.regionTotal[x.regionIdx[k]] += x.regionMass[k]
		}
		if x.siteUsers[si] > x.siteUsers[bestSite] {
			bestSite = si
		}
	}
	x.anchor = x.sites[bestSite]
}

// Scratch holds all mutable scoring state so the hot calls never
// allocate. The zero value is ready for Grow; one Scratch serves one
// goroutine.
type Scratch struct {
	uf   graph.UnionFind // full-graph components (scalar path, block-intact)
	mini graph.UnionFind // per-trial label components (batched path)

	siteRoot  []int32 // per site: component root (node id or label)
	remapGen  []uint32
	remapSlot []int32 // root -> first-seen slot, generation-stamped
	remapCtr  uint32
	slotCount []int64 // AS count per component slot

	cols       []uint64 // per-cable trial columns, batched path
	touched    []int32  // edges with a nonzero dead column this block
	touchedCol []uint64
	touchedA   []int32 // compact labels of touched edge endpoints
	touchedB   []int32
	edgeSeen   []uint32 // per-edge stamps, shared counter edgeCtr
	edgeDead   []uint32
	edgeCtr    uint32
	siteLabel  []int32
	treeFlag   []bool  // per touched edge: spanning-forest member
	extra      []int32 // cycle-closing touched edges (non-tree)
	adjStart   []int32 // forest adjacency CSR over compact labels
	adjList    []int32
	adjEdge    []int32
	parentLab  []int32 // per label: forest parent label, -1 at roots
	parentEdge []int32 // per label: touched index of the parent edge
	order      []int32 // labels, parents before children
	stack      []int32 // DFS worklist
	comp       []int32 // per-trial: label -> forest component id
	labelRoot  []int32 // per-trial: component -> root after extras rejoin
	nodeGen    []uint32 // root node -> label, generation-stamped
	nodeLabel  []int32
	nodeCtr    uint32
	nLabels    int32
}

// Grow sizes the scratch for x, reusing backing arrays when large enough.
// Call once per (goroutine, index) before the trial loop.
func (s *Scratch) Grow(x *Index) {
	growI32 := func(b []int32, n int) []int32 {
		if cap(b) < n {
			return make([]int32, n)
		}
		return b[:n]
	}
	growU32 := func(b []uint32, n int) []uint32 {
		if cap(b) < n {
			return make([]uint32, n)
		}
		return b[:n]
	}
	nSites, nEdges := len(x.sites), len(x.edgeA)
	s.siteRoot = growI32(s.siteRoot, nSites)
	s.siteLabel = growI32(s.siteLabel, nSites)
	if cap(s.treeFlag) < nEdges {
		s.treeFlag = make([]bool, nEdges)
	}
	s.treeFlag = s.treeFlag[:nEdges]
	s.extra = growI32(s.extra, nEdges)
	s.adjStart = growI32(s.adjStart, x.numNodes+2)
	s.adjList = growI32(s.adjList, 2*nEdges)
	s.adjEdge = growI32(s.adjEdge, 2*nEdges)
	s.parentLab = growI32(s.parentLab, x.numNodes+1)
	s.parentEdge = growI32(s.parentEdge, x.numNodes+1)
	s.order = growI32(s.order, x.numNodes+1)
	s.stack = growI32(s.stack, x.numNodes+1)
	s.comp = growI32(s.comp, x.numNodes+1)
	if cap(s.slotCount) < nSites {
		s.slotCount = make([]int64, nSites)
	}
	s.slotCount = s.slotCount[:nSites]
	s.remapGen = growU32(s.remapGen, x.numNodes)
	s.remapSlot = growI32(s.remapSlot, x.numNodes)
	s.nodeGen = growU32(s.nodeGen, x.numNodes)
	s.nodeLabel = growI32(s.nodeLabel, x.numNodes)
	s.labelRoot = growI32(s.labelRoot, x.numNodes+1)
	s.edgeSeen = growU32(s.edgeSeen, nEdges)
	s.edgeDead = growU32(s.edgeDead, nEdges)
	s.touched = growI32(s.touched, nEdges)
	s.touchedA = growI32(s.touchedA, nEdges)
	s.touchedB = growI32(s.touchedB, nEdges)
	if cap(s.touchedCol) < nEdges {
		s.touchedCol = make([]uint64, nEdges)
	}
	s.touchedCol = s.touchedCol[:nEdges]
	if cap(s.cols) < x.words*64 {
		s.cols = make([]uint64, x.words*64)
	}
	s.cols = s.cols[:x.words*64]
}

// nextRemapGen advances the remap stamp, clearing on wraparound.
//
//gicnet:hotpath
//gicnet:pure allow=write:s
func (s *Scratch) nextRemapGen() uint32 {
	s.remapCtr++
	if s.remapCtr == 0 {
		for i := range s.remapGen {
			s.remapGen[i] = 0
		}
		s.remapCtr = 1
	}
	return s.remapCtr
}

// edgeDeadAt reports whether pair-edge e is severed by dead: every
// supporting cable's bit is set in every covering word.
//
//gicnet:hotpath
//gicnet:pure
func (x *Index) edgeDeadAt(e int, dead graph.Bitset) bool {
	for k := x.wordStart[e]; k < x.wordStart[e+1]; k++ {
		if dead[x.wordIdx[k]]&x.wordMask[k] != x.wordMask[k] {
			return false
		}
	}
	return true
}

// ScoreDead scores one trial's dead-cable bitset (graph.BitsetWords(
// len(net.Cables)) words, as produced by failure.Plan.SampleInto). It is
// the scalar reference path; ScoreBatch computes bit-identical Scores.
//
//gicnet:hotpath
//gicnet:pure allow=write:s
func (x *Index) ScoreDead(dead graph.Bitset, s *Scratch) Score {
	s.uf.Reset(x.numNodes)
	for e := 0; e < len(x.edgeA); e++ {
		if !x.edgeDeadAt(e, dead) {
			s.uf.Union(int(x.edgeA[e]), int(x.edgeB[e]))
		}
	}
	for si := 0; si < len(x.sites); si++ {
		s.siteRoot[si] = int32(s.uf.Find(int(x.sites[si])))
	}
	return x.scoreFromRoots(s, int32(s.uf.Find(int(x.anchor))))
}

// scoreFromRoots is the canonical accumulation both scoring paths share:
// s.siteRoot holds, per site, any component identifier such that equal
// identifiers mean same component, and anchorRoot is the anchor's. Slots
// are assigned in first-seen site order and all float reductions run in
// fixed order, so equal partitions yield bit-identical Scores.
//
//gicnet:hotpath
//gicnet:pure allow=write:s
func (x *Index) scoreFromRoots(s *Scratch, anchorRoot int32) Score {
	gen := s.nextRemapGen()
	nSlots := int32(0)
	var sc Score
	var anchorCount int64
	var anchorUsers float64
	var anchorRegion [NumRegions]float64
	for si := 0; si < len(x.sites); si++ {
		r := s.siteRoot[si]
		var slot int32
		if s.remapGen[r] == gen {
			slot = s.remapSlot[r]
		} else {
			s.remapGen[r] = gen
			slot = nSlots
			s.remapSlot[r] = slot
			s.slotCount[slot] = 0
			nSlots++
		}
		s.slotCount[slot] += x.siteCount[si]
		if r == anchorRoot {
			anchorCount += x.siteCount[si]
			anchorUsers += x.siteUsers[si]
			for k := x.regionStart[si]; k < x.regionStart[si+1]; k++ {
				anchorRegion[x.regionIdx[k]] += x.regionMass[k]
			}
		}
	}
	for i := int32(0); i < nSlots; i++ {
		c := s.slotCount[i]
		sc.ReachablePairs += c * (c - 1) / 2
	}
	sc.StrandedASes = x.totalAS - anchorCount
	if x.totalUsers > 0 {
		sc.StrandedShare = (x.totalUsers - anchorUsers) / x.totalUsers
		dw := 0.0
		for i := 0; i < NumRegions; i++ {
			rs := (x.regionTotal[i] - anchorRegion[i]) / x.totalUsers
			sc.RegionStranded[i] = rs
			dw += x.demand[i] * rs
		}
		sc.DemandWeighted = dw
	}
	return sc
}
