package crosslayer

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/graph"
	"gicnet/internal/routing"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// lineWorld builds a 5-node path network: n0-n1-n2-n3-n4, one cable per
// hop, with ASes at both ends and the middle.
func lineWorld(t *testing.T) (*topology.Network, *dataset.RouterCatalog) {
	t.Helper()
	net := &topology.Network{Name: "line"}
	coords := []geo.Coord{
		{Lat: 40, Lon: -74}, {Lat: 45, Lon: -30}, {Lat: 50, Lon: 0},
		{Lat: 48, Lon: 20}, {Lat: 35, Lon: 100},
	}
	for i, c := range coords {
		net.Nodes = append(net.Nodes, topology.Node{
			Name: fmt.Sprintf("n%d", i), Coord: c, HasCoord: true, Country: "xx",
		})
	}
	for i := 0; i < 4; i++ {
		net.Cables = append(net.Cables, topology.Cable{
			Name:        fmt.Sprintf("c%d", i),
			Segments:    []topology.Segment{{A: i, B: i + 1, LengthKm: 1000}},
			KnownLength: true,
		})
	}
	cat := &dataset.RouterCatalog{ASes: []dataset.AS{
		{ASN: 1, Home: geo.Coord{Lat: 40.1, Lon: -74.2}, Routers: []geo.Coord{{Lat: 40.1, Lon: -74.2}}},
		{ASN: 2, Home: geo.Coord{Lat: 40.2, Lon: -73.9}, Routers: []geo.Coord{{Lat: 40.2, Lon: -73.9}}},
		{ASN: 3, Home: geo.Coord{Lat: 49.9, Lon: 0.3}, Routers: []geo.Coord{{Lat: 49.9, Lon: 0.3}}},
		{ASN: 4, Home: geo.Coord{Lat: 35.3, Lon: 99.5}, Routers: []geo.Coord{{Lat: 35.3, Lon: 99.5}}},
	}}
	return net, cat
}

func compileLine(t *testing.T) *Index {
	t.Helper()
	net, cat := lineWorld(t)
	x, err := Compile(net, cat, routing.DefaultDemands())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return x
}

func TestNumRegionsMatchesGeo(t *testing.T) {
	if got := len(geo.Regions()); got != NumRegions {
		t.Fatalf("NumRegions = %d, geo.Regions() has %d", NumRegions, got)
	}
}

func TestIntactScore(t *testing.T) {
	x := compileLine(t)
	in := x.Intact()
	// 4 ASes all connected: C(4,2) pairs, nothing stranded.
	if in.ReachablePairs != 6 {
		t.Fatalf("intact pairs = %d, want 6", in.ReachablePairs)
	}
	if in.StrandedASes != 0 || in.StrandedShare != 0 || in.DemandWeighted != 0 {
		t.Fatalf("intact strands something: %+v", in)
	}
	for _, v := range in.RegionStranded {
		if v != 0 {
			t.Fatalf("intact region stranded: %+v", in.RegionStranded)
		}
	}
	if x.TotalASes() != 4 || x.Sites() != 3 {
		t.Fatalf("totals: ASes=%d sites=%d, want 4 and 3", x.TotalASes(), x.Sites())
	}
}

func TestCutScores(t *testing.T) {
	x := compileLine(t)
	var s Scratch
	s.Grow(x)
	dead := graph.NewBitset(4)

	// Kill cable 3 (n3-n4): AS 4 (on n4) is cut from the anchor side.
	dead.Set(3)
	sc := x.ScoreDead(dead, &s)
	// Components: {n0,n1,n2,n3} with 3 ASes, {n4} with 1 -> C(3,2)=3 pairs.
	if sc.ReachablePairs != 3 {
		t.Fatalf("pairs after cut = %d, want 3", sc.ReachablePairs)
	}
	if sc.StrandedASes != 1 {
		t.Fatalf("stranded ASes = %d, want 1", sc.StrandedASes)
	}
	if sc.StrandedShare <= 0 || sc.StrandedShare >= 1 {
		t.Fatalf("stranded share = %v, want in (0,1)", sc.StrandedShare)
	}

	// Kill everything: every site is its own island; pairs only within
	// sites (ASes 1,2 share the n0 site).
	dead.SetRange(0, 4)
	sc = x.ScoreDead(dead, &s)
	if sc.ReachablePairs != 1 {
		t.Fatalf("pairs all-dead = %d, want 1", sc.ReachablePairs)
	}
	// The anchor site (n0, two ASes) keeps its own users; the rest strand.
	if sc.StrandedASes != 2 {
		t.Fatalf("stranded ASes all-dead = %d, want 2", sc.StrandedASes)
	}
}

func TestCompileErrors(t *testing.T) {
	net, cat := lineWorld(t)
	if _, err := Compile(net, nil, routing.DefaultDemands()); !errors.Is(err, ErrNoASes) {
		t.Fatalf("nil catalog: err = %v, want ErrNoASes", err)
	}
	if _, err := Compile(net, &dataset.RouterCatalog{}, routing.DefaultDemands()); !errors.Is(err, ErrNoASes) {
		t.Fatalf("empty catalog: err = %v, want ErrNoASes", err)
	}
	if _, err := Compile(net, cat, nil); !errors.Is(err, routing.ErrZeroDemand) {
		t.Fatalf("nil demands: err = %v, want routing.ErrZeroDemand", err)
	}
	if _, err := Compile(net, cat, []routing.Demand{{From: geo.RegionEurope, To: geo.RegionAsia, Volume: 0}}); !errors.Is(err, routing.ErrZeroDemand) {
		t.Fatalf("zero demands: err = %v, want routing.ErrZeroDemand", err)
	}

	// Coordinate-free network (the ITU shape): no attach sites.
	bare := &topology.Network{
		Name:  "bare",
		Nodes: []topology.Node{{Name: "a"}, {Name: "b"}},
		Cables: []topology.Cable{{
			Name: "c", Segments: []topology.Segment{{A: 0, B: 1, LengthKm: 1}}, KnownLength: true,
		}},
	}
	if _, err := Compile(bare, cat, routing.DefaultDemands()); !errors.Is(err, ErrNoSites) {
		t.Fatalf("coordinate-free: err = %v, want ErrNoSites", err)
	}
}

func TestDemandWeightsSumToOne(t *testing.T) {
	shares, err := routing.RegionShares(routing.DefaultDemands())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, r := range geo.Regions() {
		sum += shares[r]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("region shares sum to %v, want 1", sum)
	}
}

// TestScoringAllocFree is the 0 allocs/op contract on both scoring paths.
func TestScoringAllocFree(t *testing.T) {
	x := compileLine(t)
	plan, err := failure.Compile(x.Network(), failure.Uniform{P: 0.3}, 100)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	s.Grow(x)
	var batch failure.BatchScratch
	batch.Grow(plan)
	root := xrand.New(7)
	plan.SampleBatch(&batch, root, 0, failure.MaxBatch)
	var out [failure.MaxBatch]Score

	// Warm union-find growth before measuring.
	x.ScoreDead(batch.Row(0), &s)
	x.ScoreBatch(&batch, failure.MaxBatch, out[:], &s)

	if n := testing.AllocsPerRun(100, func() {
		x.ScoreDead(batch.Row(1), &s)
	}); n != 0 {
		t.Fatalf("ScoreDead allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		x.ScoreBatch(&batch, failure.MaxBatch, out[:], &s)
	}); n != 0 {
		t.Fatalf("ScoreBatch allocates %v per op, want 0", n)
	}
}

// TestConcurrentScoring exercises a shared Index from several goroutines
// (each with its own Scratch) for the race detector.
func TestConcurrentScoring(t *testing.T) {
	x := compileLine(t)
	plan, err := failure.Compile(x.Network(), failure.Uniform{P: 0.25}, 100)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	done := make(chan int64, workers)
	for w := 0; w < workers; w++ {
		go func() {
			var s Scratch
			s.Grow(x)
			var batch failure.BatchScratch
			batch.Grow(plan)
			root := xrand.New(99)
			plan.SampleBatch(&batch, root, 0, failure.MaxBatch)
			var out [failure.MaxBatch]Score
			x.ScoreBatch(&batch, failure.MaxBatch, out[:], &s)
			sum := int64(0)
			for b := range out {
				sum += out[b].ReachablePairs + 1000*out[b].StrandedASes
			}
			done <- sum
		}()
	}
	first := <-done
	for w := 1; w < workers; w++ {
		if got := <-done; got != first {
			t.Fatalf("worker checksum %d != %d", got, first)
		}
	}
}
