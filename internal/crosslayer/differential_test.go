package crosslayer

import (
	"fmt"
	"math"
	"testing"

	"gicnet/internal/dataset"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/graph"
	"gicnet/internal/population"
	"gicnet/internal/routing"
	"gicnet/internal/topology"
	"gicnet/internal/xrand"
)

// randomWorld synthesises a small random network and AS catalog. Shared
// by the differential harness and the fuzz seed corpus.
func randomWorld(rng *xrand.Source) (*topology.Network, *dataset.RouterCatalog) {
	numNodes := 2 + rng.Intn(30)
	net := &topology.Network{Name: "rand"}
	for i := 0; i < numNodes; i++ {
		net.Nodes = append(net.Nodes, topology.Node{
			Name:     fmt.Sprintf("n%d", i),
			Coord:    geo.Coord{Lat: rng.Range(-80, 80), Lon: rng.Range(-180, 180)},
			HasCoord: rng.Float64() > 0.1,
			Country:  "xx",
		})
	}
	numCables := 1 + rng.Intn(40)
	for c := 0; c < numCables; c++ {
		cable := topology.Cable{Name: fmt.Sprintf("c%d", c), KnownLength: true}
		segs := 1 + rng.Intn(3)
		for s := 0; s < segs; s++ {
			cable.Segments = append(cable.Segments, topology.Segment{
				A:        rng.Intn(numNodes),
				B:        rng.Intn(numNodes), // self-loops allowed on purpose
				LengthKm: rng.Range(1, 5000),
			})
		}
		net.Cables = append(net.Cables, cable)
	}
	numAS := 1 + rng.Intn(40)
	cat := &dataset.RouterCatalog{}
	for a := 0; a < numAS; a++ {
		home := geo.Coord{Lat: rng.Range(-80, 80), Lon: rng.Range(-180, 180)}
		cat.ASes = append(cat.ASes, dataset.AS{
			ASN: 64512 + a, Home: home, Routers: []geo.Coord{home},
		})
	}
	return net, cat
}

// refScore is the naive reference: attach ASes by geo.Haversine argmin,
// rebuild the severed adjacency from alive cables' segments, BFS the
// components, and count. No CSRs, no union-find, no bit tricks.
type refScore struct {
	ReachablePairs int64
	StrandedASes   int64
	StrandedShare  float64
	RegionStranded [NumRegions]float64
	DemandWeighted float64
}

func referenceScore(net *topology.Network, cat *dataset.RouterCatalog, demands []routing.Demand, dead []bool) (refScore, error) {
	var out refScore
	shares, err := routing.RegionShares(demands)
	if err != nil {
		return out, err
	}
	numNodes := len(net.Nodes)

	// Candidates: located nodes on any cable (dead or alive — attachment
	// is a compile-time property of the intact world).
	touches := make([]bool, numNodes)
	for ci := range net.Cables {
		for _, s := range net.Cables[ci].Segments {
			touches[s.A], touches[s.B] = true, true
		}
	}
	var cand []int
	for i := range net.Nodes {
		if touches[i] && net.Nodes[i].HasCoord {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return out, ErrNoSites
	}

	weights := make([]float64, len(cat.ASes))
	totalRaw := 0.0
	for i := range cat.ASes {
		weights[i] = population.DensityAt(cat.ASes[i].Home.Lat)
		totalRaw += weights[i]
	}
	if !(totalRaw > 0) {
		for i := range weights {
			weights[i] = 1
		}
		totalRaw = float64(len(weights))
	}

	regionOrder := geo.Regions()
	regionOf := make(map[geo.Region]int, len(regionOrder))
	for i, r := range regionOrder {
		regionOf[r] = i
	}

	attach := make([]int, len(cat.ASes))
	asCount := make([]int64, numNodes)
	users := make([]float64, numNodes)
	var regionUsers [][NumRegions]float64 = make([][NumRegions]float64, numNodes)
	for i := range cat.ASes {
		best, bestD := cand[0], math.Inf(1)
		for _, ni := range cand {
			d := geo.Haversine(cat.ASes[i].Home, net.Nodes[ni].Coord)
			if d < bestD {
				bestD = d
				best = ni
			}
		}
		attach[i] = best
		share := weights[i] / totalRaw
		asCount[best]++
		users[best] += share
		if ri, ok := regionOf[geo.RegionOf(cat.ASes[i].Home)]; ok {
			regionUsers[best][ri] += share
		}
	}

	// Severed adjacency: a hop survives if any alive cable carries it.
	adj := make([][]int, numNodes)
	for ci := range net.Cables {
		if dead[ci] {
			continue
		}
		for _, s := range net.Cables[ci].Segments {
			if s.A == s.B {
				continue
			}
			adj[s.A] = append(adj[s.A], s.B)
			adj[s.B] = append(adj[s.B], s.A)
		}
	}
	comp := make([]int, numNodes)
	for i := range comp {
		comp[i] = -1
	}
	numComp := 0
	var queue []int
	for i := 0; i < numNodes; i++ {
		if comp[i] >= 0 {
			continue
		}
		comp[i] = numComp
		queue = append(queue[:0], i)
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, m := range adj[n] {
				if comp[m] < 0 {
					comp[m] = numComp
					queue = append(queue, m)
				}
			}
		}
		numComp++
	}

	// Anchor: attach node with the largest user share (accumulated in AS
	// order, like Compile), ties to the lowest node index.
	anchor := -1
	for i := 0; i < numNodes; i++ {
		if asCount[i] == 0 {
			continue
		}
		if anchor < 0 || users[i] > users[anchor] {
			anchor = i
		}
	}

	compAS := make([]int64, numComp)
	totalAS := int64(0)
	totalUsers := 0.0
	var regionTotal [NumRegions]float64
	anchorUsers := 0.0
	var anchorRegion [NumRegions]float64
	anchorCount := int64(0)
	for i := 0; i < numNodes; i++ {
		if asCount[i] == 0 {
			continue
		}
		compAS[comp[i]] += asCount[i]
		totalAS += asCount[i]
		totalUsers += users[i]
		for ri := 0; ri < NumRegions; ri++ {
			regionTotal[ri] += regionUsers[i][ri]
		}
		if comp[i] == comp[anchor] {
			anchorCount += asCount[i]
			anchorUsers += users[i]
			for ri := 0; ri < NumRegions; ri++ {
				anchorRegion[ri] += regionUsers[i][ri]
			}
		}
	}
	for _, c := range compAS {
		out.ReachablePairs += c * (c - 1) / 2
	}
	out.StrandedASes = totalAS - anchorCount
	if totalUsers > 0 {
		out.StrandedShare = (totalUsers - anchorUsers) / totalUsers
		for ri := 0; ri < NumRegions; ri++ {
			out.RegionStranded[ri] = (regionTotal[ri] - anchorRegion[ri]) / totalUsers
			out.DemandWeighted += shares[regionOrder[ri]] * out.RegionStranded[ri]
		}
	}
	return out, nil
}

// TestDifferentialVsBFS is the randomized differential harness: 200+
// random worlds, each scored over several random dead sets by the CSR
// path and the naive BFS reference. Integer counts must be bit-identical;
// float shares agree to tight tolerance (the reference sums in a
// different order).
func TestDifferentialVsBFS(t *testing.T) {
	demands := routing.DefaultDemands()
	const worlds = 220
	for wi := 0; wi < worlds; wi++ {
		rng := xrand.New(uint64(1000 + wi))
		net, cat := randomWorld(rng)
		x, err := Compile(net, cat, demands)
		if err == ErrNoSites {
			continue // all nodes coordinate-free: nothing to test
		}
		if err != nil {
			t.Fatalf("world %d: Compile: %v", wi, err)
		}
		var s Scratch
		s.Grow(x)
		numCables := len(net.Cables)
		dead := graph.NewBitset(numCables)
		deadBools := make([]bool, numCables)
		for trial := 0; trial < 8; trial++ {
			p := rng.Float64()
			dead.Clear()
			for ci := 0; ci < numCables; ci++ {
				deadBools[ci] = rng.Float64() < p
				if deadBools[ci] {
					dead.Set(ci)
				}
			}
			got := x.ScoreDead(dead, &s)
			want, err := referenceScore(net, cat, demands, deadBools)
			if err != nil {
				t.Fatalf("world %d trial %d: reference: %v", wi, trial, err)
			}
			if got.ReachablePairs != want.ReachablePairs {
				t.Fatalf("world %d trial %d: pairs %d != reference %d",
					wi, trial, got.ReachablePairs, want.ReachablePairs)
			}
			if got.StrandedASes != want.StrandedASes {
				t.Fatalf("world %d trial %d: stranded ASes %d != reference %d",
					wi, trial, got.StrandedASes, want.StrandedASes)
			}
			if math.Abs(got.StrandedShare-want.StrandedShare) > 1e-9 {
				t.Fatalf("world %d trial %d: stranded share %v != reference %v",
					wi, trial, got.StrandedShare, want.StrandedShare)
			}
			if math.Abs(got.DemandWeighted-want.DemandWeighted) > 1e-9 {
				t.Fatalf("world %d trial %d: demand-weighted %v != reference %v",
					wi, trial, got.DemandWeighted, want.DemandWeighted)
			}
			for ri := 0; ri < NumRegions; ri++ {
				if math.Abs(got.RegionStranded[ri]-want.RegionStranded[ri]) > 1e-9 {
					t.Fatalf("world %d trial %d region %d: %v != reference %v",
						wi, trial, ri, got.RegionStranded[ri], want.RegionStranded[ri])
				}
			}
		}
	}
}

// TestBatchMatchesScalarRandom pins batched ≡ scalar bit-identity over
// random worlds and blocks: every Score field, including floats, must be
// exactly equal (same canonical accumulation, same partition).
func TestBatchMatchesScalarRandom(t *testing.T) {
	demands := routing.DefaultDemands()
	for wi := 0; wi < 60; wi++ {
		rng := xrand.New(uint64(5000 + wi))
		net, cat := randomWorld(rng)
		x, err := Compile(net, cat, demands)
		if err == ErrNoSites {
			continue
		}
		if err != nil {
			t.Fatalf("world %d: Compile: %v", wi, err)
		}
		var s Scratch
		s.Grow(x)
		numCables := len(net.Cables)
		words := graph.BitsetWords(numCables)

		// Hand-rolled block: random rows, including full-dead and empty.
		masks := make(graph.Bitset, 64*words)
		n := 1 + rng.Intn(64)
		for b := 0; b < n; b++ {
			row := masks[b*words : (b+1)*words]
			switch rng.Intn(8) {
			case 0: // empty
			case 1:
				for ci := 0; ci < numCables; ci++ {
					row.Set(ci)
				}
			default:
				p := rng.Float64()
				for ci := 0; ci < numCables; ci++ {
					if rng.Float64() < p {
						row.Set(ci)
					}
				}
			}
		}
		batch := batchFromMasks(t, x, masks, words)
		out := make([]Score, 64)
		x.ScoreBatch(batch, n, out, &s)
		var s2 Scratch
		s2.Grow(x)
		for b := 0; b < n; b++ {
			want := x.ScoreDead(masks[b*words:(b+1)*words], &s2)
			if !scoresBitIdentical(out[b], want) {
				t.Fatalf("world %d trial %d: batch %+v != scalar %+v", wi, b, out[b], want)
			}
		}
	}
}

// batchFromMasks loads hand-crafted row masks into a real BatchScratch
// (rows are writable views, so tests can inject exact dead sets).
func batchFromMasks(t *testing.T, x *Index, masks graph.Bitset, words int) *failure.BatchScratch {
	t.Helper()
	plan, err := failure.Compile(x.Network(), failure.Uniform{P: 0.5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	var batch failure.BatchScratch
	batch.Grow(plan)
	for b := 0; b < failure.MaxBatch; b++ {
		copy(batch.Row(b), masks[b*words:(b+1)*words])
	}
	return &batch
}

func scoresBitIdentical(a, b Score) bool {
	if a.ReachablePairs != b.ReachablePairs || a.StrandedASes != b.StrandedASes {
		return false
	}
	if math.Float64bits(a.StrandedShare) != math.Float64bits(b.StrandedShare) {
		return false
	}
	if math.Float64bits(a.DemandWeighted) != math.Float64bits(b.DemandWeighted) {
		return false
	}
	for i := 0; i < NumRegions; i++ {
		if math.Float64bits(a.RegionStranded[i]) != math.Float64bits(b.RegionStranded[i]) {
			return false
		}
	}
	return true
}
