package crosslayer

import (
	"gicnet/internal/failure"
	"gicnet/internal/graph"
)

// Batched scoring over a 64-trial bitsliced block, mirroring the
// column-major strategy of failure.EvaluateBatch. The scalar path pays a
// full union-find over every node and pair-edge per trial; the block path
// amortises that: it transposes the block's dead masks into per-cable
// trial columns, finds the pair-edges that die anywhere in the block,
// builds the block-intact component structure once, and spans the touched
// subgraph with a forest so that each trial's partition falls out of one
// parents-first sweep instead of a fresh union-find.
//
// Equivalence: a pair-edge is dead in trial b iff the AND of its
// supporting cables' columns has bit b set, which is exactly the
// ScoreDead word-mask test for row b. Edges untouched in the whole block
// are alive in every trial and fold into the block-intact structure; per
// trial the touched edges are re-added when alive — tree edges by
// inheritance in the preorder sweep, cycle-closing extras by a small
// union over component ids. The resulting site partition is therefore
// identical to the scalar path's for every trial, and scoreFromRoots
// reduces equal partitions to bit-identical Scores.

// ScoreBatch scores the first n rows of a sampled trial block into
// out[:n], producing exactly ScoreDead(batch.Row(b), s) for each b. The
// batch must have been grown for the plan of the same network the index
// was compiled for, and s for this index.
//
//gicnet:hotpath
func (x *Index) ScoreBatch(batch *failure.BatchScratch, n int, out []Score, s *Scratch) {
	if n <= 0 {
		return
	}
	words := x.words
	var tmp [64]uint64
	for wi := 0; wi < words; wi++ {
		for b := 0; b < n; b++ {
			tmp[b] = batch.Row(b)[wi]
		}
		for b := n; b < failure.MaxBatch; b++ {
			tmp[b] = 0 // absent trials kill no cables
		}
		graph.Transpose64(&tmp)
		copy(s.cols[wi<<6:(wi+1)<<6], tmp[:])
	}

	// Touched pair-edges: those with at least one supporting cable dead
	// somewhere in the block, whose dead column (AND over supporting
	// cables' columns) is nonzero. Edge e's dead column bit b set means
	// edge e severed in trial b.
	eg := s.nextEdgeGen()
	nt := 0
	numCables := len(x.cableEdgeStart) - 1
	for c := 0; c < numCables; c++ {
		if s.cols[c] == 0 {
			continue
		}
		for k := x.cableEdgeStart[c]; k < x.cableEdgeStart[c+1]; k++ {
			e := x.cableEdges[k]
			if s.edgeSeen[e] == eg {
				continue
			}
			s.edgeSeen[e] = eg
			col := ^uint64(0)
			for q := x.cableStart[e]; q < x.cableStart[e+1] && col != 0; q++ {
				col &= s.cols[x.cableList[q]]
			}
			if col != 0 {
				s.edgeDead[e] = eg
				s.touched[nt] = e
				s.touchedCol[nt] = col
				nt++
			}
		}
	}

	// Block-intact components: every edge alive throughout the block.
	s.uf.Reset(x.numNodes)
	for e := 0; e < len(x.edgeA); e++ {
		if s.edgeDead[e] != eg {
			s.uf.Union(int(x.edgeA[e]), int(x.edgeB[e]))
		}
	}

	// Compact labels over the roots that matter: sites, the anchor, and
	// touched edge endpoints.
	ng := s.nextNodeGen()
	s.nLabels = 0
	for si := 0; si < len(x.sites); si++ {
		s.siteLabel[si] = s.labelOf(x.sites[si], ng)
	}
	anchorLabel := s.labelOf(x.anchor, ng)
	// Drop touched edges whose endpoints share a block-intact label: such
	// an edge is parallel to an always-alive connection, so its death can
	// never split the partition, in any trial. What survives is the set of
	// edges that can actually matter; deadMask collects the trials where
	// at least one of them dies.
	eff := 0
	deadMask := uint64(0)
	for ti := 0; ti < nt; ti++ {
		e := s.touched[ti]
		a := s.labelOf(x.edgeA[e], ng)
		bl := s.labelOf(x.edgeB[e], ng)
		if a == bl {
			continue
		}
		s.touchedA[eff] = a
		s.touchedB[eff] = bl
		s.touchedCol[eff] = s.touchedCol[ti]
		deadMask |= s.touchedCol[ti]
		eff++
	}
	nt = eff
	labels := int(s.nLabels)

	// Spanning forest of the all-alive touched graph over the compact
	// labels. The pair-edge graph is almost a tree (nearly every edge is
	// a bridge), so per trial the partition is "cut the forest at this
	// trial's dead tree edges" — one preorder sweep, no per-trial
	// union-find. The few cycle-closing extras are patched back with a
	// small union over component ids. The block-intact structure in s.uf
	// has served its purpose (the labels above are its compaction), so it
	// builds the forest here.
	s.uf.Reset(labels)
	ne := 0
	for ti := 0; ti < nt; ti++ {
		if s.uf.Union(int(s.touchedA[ti]), int(s.touchedB[ti])) {
			s.treeFlag[ti] = true
		} else {
			s.treeFlag[ti] = false
			s.extra[ne] = int32(ti)
			ne++
		}
	}
	// Adjacency CSR over tree edges, then a stack DFS assigning each
	// label its forest parent and the touched index of the edge to it,
	// in an order where parents precede children.
	for l := 0; l <= labels; l++ {
		s.adjStart[l] = 0
	}
	for ti := 0; ti < nt; ti++ {
		if s.treeFlag[ti] {
			s.adjStart[s.touchedA[ti]]++
			s.adjStart[s.touchedB[ti]]++
		}
	}
	sum := int32(0)
	for l := 0; l < labels; l++ {
		deg := s.adjStart[l]
		s.adjStart[l] = sum
		sum += deg
	}
	s.adjStart[labels] = sum
	for ti := 0; ti < nt; ti++ {
		if s.treeFlag[ti] {
			a, bl := s.touchedA[ti], s.touchedB[ti]
			s.adjList[s.adjStart[a]] = bl
			s.adjEdge[s.adjStart[a]] = int32(ti)
			s.adjStart[a]++
			s.adjList[s.adjStart[bl]] = a
			s.adjEdge[s.adjStart[bl]] = int32(ti)
			s.adjStart[bl]++
		}
	}
	for l := labels; l > 0; l-- {
		s.adjStart[l] = s.adjStart[l-1]
	}
	s.adjStart[0] = 0
	for l := 0; l < labels; l++ {
		s.parentEdge[l] = -2 // unvisited
	}
	np := 0
	for r := 0; r < labels; r++ {
		if s.parentEdge[r] != -2 {
			continue
		}
		s.parentEdge[r] = -1 // forest root
		s.parentLab[r] = -1
		top := 0
		s.stack[top] = int32(r)
		top++
		for top > 0 {
			top--
			v := s.stack[top]
			s.order[np] = v
			np++
			for k := s.adjStart[v]; k < s.adjStart[v+1]; k++ {
				w := s.adjList[k]
				if s.parentEdge[w] != -2 {
					continue
				}
				s.parentEdge[w] = s.adjEdge[k]
				s.parentLab[w] = v
				s.stack[top] = w
				top++
			}
		}
	}

	// Per trial: walk the forest parents-first — a label starts a new
	// component iff it has no alive parent edge this trial — then re-join
	// components across alive cycle-closing extras and resolve each
	// component's root once. Equal partitions hand scoreFromRoots
	// identical groupings, so the Scores match the scalar path's bit for
	// bit; trials killing no partition-relevant edge keep the intact
	// partition, whose canonical accumulation is the intact score bit for
	// bit (the same property the empty-mask fuzz case pins).
	for b := 0; b < n; b++ {
		bit := uint64(1) << uint(b)
		if deadMask&bit == 0 {
			out[b] = x.intact
			continue
		}
		nComp := int32(0)
		for i := 0; i < labels; i++ {
			l := s.order[i]
			pe := s.parentEdge[l]
			if pe >= 0 && s.touchedCol[pe]&bit == 0 {
				s.comp[l] = s.comp[s.parentLab[l]]
			} else {
				s.comp[l] = nComp
				nComp++
			}
		}
		if ne == 0 {
			for si := 0; si < len(x.sites); si++ {
				s.siteRoot[si] = s.comp[s.siteLabel[si]]
			}
			out[b] = x.scoreFromRoots(s, s.comp[anchorLabel])
			continue
		}
		s.mini.Reset(int(nComp))
		for k := 0; k < ne; k++ {
			ti := s.extra[k]
			if s.touchedCol[ti]&bit == 0 {
				s.mini.Union(int(s.comp[s.touchedA[ti]]), int(s.comp[s.touchedB[ti]]))
			}
		}
		for c := int32(0); c < nComp; c++ {
			s.labelRoot[c] = int32(s.mini.Find(int(c)))
		}
		for si := 0; si < len(x.sites); si++ {
			s.siteRoot[si] = s.labelRoot[s.comp[s.siteLabel[si]]]
		}
		out[b] = x.scoreFromRoots(s, s.labelRoot[s.comp[anchorLabel]])
	}
}

// labelOf compacts a node's block-intact component root to a dense label,
// first-seen order under the current generation stamp.
//
//gicnet:hotpath
func (s *Scratch) labelOf(node int32, gen uint32) int32 {
	r := s.uf.Find(int(node))
	if s.nodeGen[r] != gen {
		s.nodeGen[r] = gen
		s.nodeLabel[r] = s.nLabels
		s.nLabels++
	}
	return s.nodeLabel[r]
}

// nextEdgeGen advances the shared edge stamp, clearing on wraparound.
//
//gicnet:hotpath
func (s *Scratch) nextEdgeGen() uint32 {
	s.edgeCtr++
	if s.edgeCtr == 0 {
		for i := range s.edgeSeen {
			s.edgeSeen[i] = 0
		}
		for i := range s.edgeDead {
			s.edgeDead[i] = 0
		}
		s.edgeCtr = 1
	}
	return s.edgeCtr
}

// nextNodeGen advances the label stamp, clearing on wraparound.
//
//gicnet:hotpath
func (s *Scratch) nextNodeGen() uint32 {
	s.nodeCtr++
	if s.nodeCtr == 0 {
		for i := range s.nodeGen {
			s.nodeGen[i] = 0
		}
		s.nodeCtr = 1
	}
	return s.nodeCtr
}
