module gicnet

go 1.22
