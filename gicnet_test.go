package gicnet

import (
	"context"
	"testing"
)

func TestDefaultWorldFacade(t *testing.T) {
	w, err := DefaultWorld()
	if err != nil {
		t.Fatal(err)
	}
	if w.Seed != DefaultSeed {
		t.Errorf("seed = %d", w.Seed)
	}
	if len(w.Submarine.Cables) != 470 {
		t.Errorf("submarine cables = %d", len(w.Submarine.Cables))
	}
}

func TestNewWorldSeedsDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("double world generation skipped in short mode")
	}
	a, err := NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Submarine.Nodes {
		if a.Submarine.Nodes[i] != b.Submarine.Nodes[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical submarine nodes")
	}
}

func TestNewWorldWithConfig(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.Routers.ASCount = 256
	w, err := NewWorldWithConfig(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Routers.ASes) != 256 {
		t.Errorf("AS count = %d", len(w.Routers.ASes))
	}
}

func TestFacadeModels(t *testing.T) {
	if S1().Name() != "S1(high)" || S2().Name() != "S2(low)" {
		t.Error("model names wrong")
	}
	m, err := StormModel(Carrington)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "storm:carrington-1859" {
		t.Errorf("storm model name = %q", m.Name())
	}
}

func TestFacadeSimulate(t *testing.T) {
	w, err := DefaultWorld()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(context.Background(), w.Intertubes, SimConfig{
		Model: S2(), SpacingKm: 150, Trials: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CableFrac.N() != 3 {
		t.Errorf("trials recorded = %d", res.CableFrac.N())
	}
}

func TestFacadeAnalyses(t *testing.T) {
	w, err := DefaultWorld()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAnalyzer(w); err != nil {
		t.Fatal(err)
	}
	as, err := AnalyzeASes(w)
	if err != nil {
		t.Fatal(err)
	}
	if as.ReachAbove40 <= 0 {
		t.Error("AS analysis empty")
	}
	ir, err := AnalyzeSystems(w)
	if err != nil {
		t.Fatal(err)
	}
	if !ir.GoogleMoreResilientThanFacebook() {
		t.Error("expected google > facebook resilience")
	}
}

func TestFacadeShutdownAndSatellite(t *testing.T) {
	w, err := DefaultWorld()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanShutdown(w.Submarine, Quebec, DefaultShutdownOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Improvement() <= 0 {
		t.Error("no shutdown improvement for moderate storm")
	}
	exp, err := AssessConstellation(Starlink(), Carrington)
	if err != nil {
		t.Fatal(err)
	}
	if exp.DamagedExpected <= 0 {
		t.Error("no satellite damage under carrington")
	}
}

func TestFacadeRecommendBridges(t *testing.T) {
	if testing.Short() {
		t.Skip("bridge candidate search skipped in short mode")
	}
	w, err := DefaultWorld()
	if err != nil {
		t.Fatal(err)
	}
	cands, err := RecommendBridges(w, S1(), 150, 10, 1, 2, "nz", "us")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Errorf("candidates = %d", len(cands))
	}
}
