package gicnet

// Benchmarks: one per paper table/figure plus the design-choice ablations
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its artifact end to end (on the cached
// default world), so ns/op is the cost of reproducing that figure.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"gicnet/internal/core"
	"gicnet/internal/crosslayer"
	"gicnet/internal/dataset"
	"gicnet/internal/experiments"
	"gicnet/internal/failure"
	"gicnet/internal/geo"
	"gicnet/internal/gic"
	"gicnet/internal/graph"
	"gicnet/internal/grid"
	"gicnet/internal/partition"
	"gicnet/internal/rare"
	"gicnet/internal/recovery"
	"gicnet/internal/resilience"
	"gicnet/internal/routing"
	"gicnet/internal/satellite"
	"gicnet/internal/scenario"
	"gicnet/internal/serve"
	"gicnet/internal/serve/loadtest"
	"gicnet/internal/shutdown"
	"gicnet/internal/sim"
	"gicnet/internal/solar"
	"gicnet/internal/xrand"
)

func benchWorld(b *testing.B) *dataset.World {
	b.Helper()
	if testing.Short() {
		b.Skip("end-to-end figure benchmarks skipped in short mode")
	}
	w, err := dataset.Default()
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func benchCfg() experiments.Config {
	return experiments.Config{Trials: 10, Seed: dataset.DefaultSeed}
}

func BenchmarkFig3LatitudePDF(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aCableEndpointDistribution(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4a(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4bInfraDistribution(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4b(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5LengthCDF(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6CableFailures regenerates the full Figure 6/7 sweep (the
// paper computes both from the same runs; so do we — this is the joint
// cost).
func BenchmarkFig6CableFailures(b *testing.B) {
	w := benchWorld(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig67(ctx, w, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7NodeFailures isolates the per-run node-unreachability cost
// on the submarine network (Figure 7's marginal work over Figure 6).
func BenchmarkFig7NodeFailures(b *testing.B) {
	w := benchWorld(b)
	ctx := context.Background()
	cfg := sim.Config{Model: failure.Uniform{P: 0.01}, SpacingKm: 150, Trials: 10, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(ctx, w.Submarine, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8NonUniform(b *testing.B) {
	w := benchWorld(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(ctx, w, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9aASReach(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9bASSpread(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Routers.SpreadSample()
	}
}

func BenchmarkCountryConnectivity(b *testing.B) {
	w := benchWorld(b)
	ctx := context.Background()
	cases := experiments.DefaultCountryCases()
	cfg := experiments.Config{Trials: 2, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Countries(ctx, w, cfg, cases); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSystemsResilience(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Systems(w); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension / ablation benchmarks ---

func BenchmarkShutdownPlanner(b *testing.B) {
	w := benchWorld(b)
	opts := shutdown.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shutdown.PlanShutdown(w.Submarine, gic.Quebec, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyAugmentation(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Recommend(w, failure.S1(), 150, 10, 1, 3, "nz", "us"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridCoupling(b *testing.B) {
	w := benchWorld(b)
	probs := failure.S1().Probs
	gm := grid.DefaultModel(probs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := grid.Compare(w.Submarine, failure.S2(), gm, 150, 10, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSatelliteDecay(b *testing.B) {
	rng := xrand.New(1)
	c := satellite.Starlink()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := satellite.SimulateDecay(c, gic.Carrington, 14, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrafficRouting(b *testing.B) {
	w := benchWorld(b)
	demands := routing.DefaultDemands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.Route(w.Submarine, demands, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecoveryPlanning(b *testing.B) {
	w := benchWorld(b)
	rng := xrand.New(7)
	dead, err := failure.SampleCableDeaths(w.Submarine, failure.S2(), 150, rng)
	if err != nil {
		b.Fatal(err)
	}
	faults, err := recovery.FaultsFrom(w.Submarine, dead, 150, 0.1, rng)
	if err != nil {
		b.Fatal(err)
	}
	fleet := recovery.DefaultFleet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := recovery.PlanRecovery(w.Submarine, faults, fleet, recovery.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResilienceSuite(b *testing.B) {
	w := benchWorld(b)
	p := resilience.GooglePlacement()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resilience.Evaluate(w, p, failure.S1(), 150, 10, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullScenario(b *testing.B) {
	w := benchWorld(b)
	cfg := scenario.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolarRiskModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := solar.ModulatedDecadeRisk(0.09, 2020); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: Monte Carlo estimate vs the analytic expected cable fraction —
// quantifies what the sampling layer costs over the closed form.
func BenchmarkAblationAnalyticVsMonteCarlo(b *testing.B) {
	w := benchWorld(b)
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := failure.ExpectedCableFrac(w.Submarine, failure.S1(), 150); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("montecarlo-10", func(b *testing.B) {
		ctx := context.Background()
		cfg := sim.Config{Model: failure.S1(), SpacingKm: 150, Trials: 10, Seed: 1}
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(ctx, w.Submarine, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: endpoint vs path latitude banding (the paper's simplification
// vs the physically strict rule).
func BenchmarkAblationBanding(b *testing.B) {
	w := benchWorld(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtBanding(ctx, w, benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: serial vs parallel trial execution in the simulation engine.
func BenchmarkAblationSimWorkers(b *testing.B) {
	w := benchWorld(b)
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "serial", 4: "workers-4"}[workers], func(b *testing.B) {
			cfg := sim.Config{Model: failure.S1(), SpacingKm: 150, Trials: 64, Seed: 1, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(ctx, w.Submarine, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Serving throughput: the example-workload mix through gicnetd's engine
// (internal/serve) with every tier enabled versus the no-tier baseline.
// One op is one full mix (256 requests, 8 clients); both sub-benchmarks
// report req/s and the worst per-run p99 latency, which cmd/benchdiff
// gates: full must sustain at least 3x the baseline's req/s, and its p99
// must be no worse. Both servers pin the same cached world, so the gap
// measured is the serving tiers' — plan reuse, result cache, dedup and
// sweep batching — not world-generation amortisation.
func BenchmarkServeMix(b *testing.B) {
	w := benchWorld(b)
	opts := loadtest.Options{Requests: 256, Concurrency: 8}
	for _, mode := range []string{"nocache", "full"} {
		b.Run(mode, func(b *testing.B) {
			srv, err := serve.New(serve.Config{
				Worlds: []*dataset.World{w}, Shards: 2, WorkersPerShard: 2,
				Baseline: mode == "nocache",
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			var served int
			var busy time.Duration
			var worstP99 time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := loadtest.Run(context.Background(), srv, opts)
				if err != nil {
					b.Fatal(err)
				}
				served += rep.Requests
				busy += rep.Duration
				if rep.P99 > worstP99 {
					worstP99 = rep.P99
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(served)/busy.Seconds(), "req/s")
			b.ReportMetric(float64(worstP99.Nanoseconds()), "p99-ns")
		})
	}
}

// Ablation: world generation cost by dataset.
func BenchmarkWorldGeneration(b *testing.B) {
	if testing.Short() {
		b.Skip("world generation benchmark skipped in short mode")
	}
	b.Run("submarine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dataset.GenerateSubmarine(dataset.DefaultSubmarineConfig(), xrand.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("intertubes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dataset.GenerateIntertubes(dataset.DefaultIntertubesConfig(), xrand.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("itu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dataset.GenerateITU(dataset.DefaultITUConfig(), xrand.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("routers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dataset.GenerateRouters(dataset.DefaultRouterConfig(), xrand.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- performance-architecture benchmarks (plan / scratch / sweep layers) ---

// BenchmarkTrialLoop is the allocation-regression guard on the real
// submarine network: one steady-state Monte Carlo trial (sample + evaluate)
// through a compiled plan must report 0 allocs/op.
func BenchmarkTrialLoop(b *testing.B) {
	benchTrialLoop(b, failure.S1())
}

// BenchmarkTrialLoopLowP is the sparse-sampler showcase: at p=0.001 almost
// every cable survives, so geometric skip sampling touches only a handful
// of cables per trial instead of drawing one Bernoulli per cable.
func BenchmarkTrialLoopLowP(b *testing.B) {
	benchTrialLoop(b, failure.Uniform{P: 0.001})
}

func benchTrialLoop(b *testing.B, m failure.Model) {
	w := benchWorld(b)
	plan, err := failure.Compile(w.Submarine, m, 150)
	if err != nil {
		b.Fatal(err)
	}
	dead := plan.NewDead()
	root := xrand.New(dataset.DefaultSeed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := root.SplitAt(uint64(i))
		plan.SampleInto(dead, &rng)
		_ = plan.Evaluate(dead)
	}
}

// BenchmarkTrialLoopHighP measures the trial loop at p=0.1 — the paper's
// high-probability sweep region, where evaluation rather than sampling
// dominates — in scalar and trial-block form, plus the isolated evaluate
// kernels the speedup gate names. Every sub-benchmark reports ns per TRIAL
// (the batched loops advance b.N trials across blocks), so the numbers
// compare directly. `make bench-check` gates evaluate-batched at ≥2× over
// evaluate-scalar, re-proving the block evaluator's claim on every run.
func BenchmarkTrialLoopHighP(b *testing.B) {
	w := benchWorld(b)
	plan, err := failure.Compile(w.Submarine, failure.Uniform{P: 0.1}, 150)
	if err != nil {
		b.Fatal(err)
	}
	var scratch failure.BatchScratch
	scratch.Grow(plan)
	outcomes := make([]failure.Outcome, failure.MaxBatch)
	root := xrand.New(dataset.DefaultSeed)
	b.Run("scalar", func(b *testing.B) {
		dead := plan.NewDead()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := root.SplitAt(uint64(i))
			plan.SampleInto(dead, &rng)
			_ = plan.Evaluate(dead)
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for t0 := 0; t0 < b.N; t0 += failure.MaxBatch {
			n := b.N - t0
			if n > failure.MaxBatch {
				n = failure.MaxBatch
			}
			plan.SampleBatch(&scratch, root, uint64(t0), n)
			plan.EvaluateBatch(&scratch, n, outcomes[:n])
		}
	})
	// The evaluate pair scores the same pre-sampled block through each
	// path, isolating evaluation from RNG and sampling cost.
	plan.SampleBatch(&scratch, root, 0, failure.MaxBatch)
	b.Run("evaluate-scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = plan.Evaluate(scratch.Row(i % failure.MaxBatch))
		}
	})
	b.Run("evaluate-batched", func(b *testing.B) {
		b.ReportAllocs()
		for t0 := 0; t0 < b.N; t0 += failure.MaxBatch {
			n := b.N - t0
			if n > failure.MaxBatch {
				n = failure.MaxBatch
			}
			plan.EvaluateBatch(&scratch, n, outcomes[:n])
		}
	})
}

// BenchmarkBitsetKernels times the multi-word primitives on their own, at
// the real network's mask width (8 words = 470 cables) and at widths deep
// into the vector path, so kernel-level regressions are visible before
// they surface in trial-loop numbers.
func BenchmarkBitsetKernels(b *testing.B) {
	rng := xrand.New(dataset.DefaultSeed)
	for _, words := range []int{8, 64, 512} {
		x := make(graph.Bitset, words)
		y := make(graph.Bitset, words)
		for i := range x {
			x[i], y[i] = rng.Uint64(), rng.Uint64()
		}
		name := func(op string) string { return fmt.Sprintf("%s-%dw", op, words) }
		b.Run(name("popcount"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = graph.PopcountWords(x)
			}
		})
		b.Run(name("countandnot"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = graph.CountAndNot(x, y)
			}
		})
		b.Run(name("andnotany"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = graph.AndNotAny(x, y)
			}
		})
	}
}

// BenchmarkSampleSparse isolates the two sampling strategies at p=0.001 on
// the submarine network: "sparse" is the compiled geometric-skip program,
// "dense" the one-Bernoulli-per-cable reference path.
func BenchmarkSampleSparse(b *testing.B) {
	w := benchWorld(b)
	plan, err := failure.Compile(w.Submarine, failure.Uniform{P: 0.001}, 150)
	if err != nil {
		b.Fatal(err)
	}
	dead := plan.NewDead()
	root := xrand.New(dataset.DefaultSeed)
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := root.SplitAt(uint64(i))
			plan.SampleInto(dead, &rng)
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := root.SplitAt(uint64(i))
			plan.SampleDense(dead, &rng)
		}
	})
}

// BenchmarkBitsetEvaluate isolates the word-level outcome kernel: popcount
// over the dead mask plus the incidence-mask unreachable-node test, on a
// fixed pre-sampled realisation.
func BenchmarkBitsetEvaluate(b *testing.B) {
	w := benchWorld(b)
	plan, err := failure.Compile(w.Submarine, failure.S1(), 150)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(dataset.DefaultSeed)
	dead := plan.Sample(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = plan.Evaluate(dead)
	}
}

// BenchmarkPlanCompile is the one-time cost a run pays to precompute its
// per-cable probabilities, repeater counts and incidence lists.
func BenchmarkPlanCompile(b *testing.B) {
	w := benchWorld(b)
	w.Submarine.CableIncidence() // charge the shared topology cache once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := failure.Compile(w.Submarine, failure.S1(), 150); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrialLoopConnectivity races the two connectivity engines on one
// steady-state country-analysis trial (sample + us↔Europe verdict) at a
// low-probability sweep point, where the direct path's full cable→edge
// projection dominates. `make bench-check` gates "contracted" at ≥2× over
// "direct" — the speedup the core-contraction subsystem exists to deliver.
func BenchmarkTrialLoopConnectivity(b *testing.B) {
	w := benchWorld(b)
	net := w.Submarine
	plan, err := failure.Compile(net, failure.Uniform{P: 0.001}, 150)
	if err != nil {
		b.Fatal(err)
	}
	from := benchNodeIDs(net.NodesOfCountry("us"))
	var to []graph.NodeID
	for i, nd := range net.Nodes {
		if nd.HasCoord && geo.RegionOf(nd.Coord) == geo.Region("europe") {
			to = append(to, graph.NodeID(i))
		}
	}
	if len(from) == 0 || len(to) == 0 {
		b.Fatal("empty benchmark node sets")
	}
	scratch := net.Graph().NewScratch()
	dead := plan.NewDead()
	root := xrand.New(dataset.DefaultSeed)
	b.Run("direct", func(b *testing.B) {
		var deadEdges graph.Bitset
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := root.SplitAt(uint64(i))
			plan.SampleInto(dead, &rng)
			deadEdges = net.DeadEdgeBitsInto(deadEdges, dead)
			_ = scratch.AnyConnectedBits(deadEdges, from, to)
		}
	})
	b.Run("contracted", func(b *testing.B) {
		cc := plan.Contraction()
		fromS := cc.SupersOf(nil, from)
		toS := cc.SupersOf(nil, to)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := root.SplitAt(uint64(i))
			plan.SampleInto(dead, &rng)
			_ = scratch.AnyConnectedSupers(cc, dead, fromS, toS)
		}
	})
}

// BenchmarkTailEstimate prices the rare-event estimators against plain
// Monte Carlo on the tail event P(>=6 cables dead) at p=1e-4, the deepest
// sweep point where plain MC still observes the event at this budget. Each
// iteration runs 20 independent replicates (seeds DefaultSeed+1000r) of a
// 2048-trial run per estimator and reports the replicate variance of the
// tail estimate as the custom metric "nvar/est" (variance in units of
// 1e-9 — go test's metric printer truncates raw values this small to
// zero) alongside ns/op, so the
// snapshot records both cost and statistical efficiency. `make bench-check`
// gates plain/is-qmc variance at >=10x (the DESIGN.md variance-reduction
// claim); the seeds are fixed, so the metric is deterministic.
func BenchmarkTailEstimate(b *testing.B) {
	w := benchWorld(b)
	ctx := context.Background()
	const (
		tailP      = 1e-4
		threshold  = 6
		trials     = 2048
		replicates = 20
	)
	indicator := func(o failure.Outcome) float64 {
		if o.CablesFailed >= threshold {
			return 1
		}
		return 0
	}
	modes := []struct {
		name string
		est  *rare.Estimator
	}{
		{"plain", nil},
		{"is", &rare.Estimator{Target: threshold}},
		{"is-qmc", &rare.Estimator{Target: threshold, QMC: true}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var repvar float64
			for i := 0; i < b.N; i++ {
				var mean, m2 float64
				for r := 0; r < replicates; r++ {
					cfg := sim.Config{
						Model:     failure.Uniform{P: tailP},
						SpacingKm: 100,
						Trials:    trials,
						Seed:      dataset.DefaultSeed + uint64(1000*r),
						Workers:   4,
					}
					if m.est != nil {
						cfg.Estimator = m.est
					}
					res, err := sim.Run(ctx, w.Submarine, cfg)
					if err != nil {
						b.Fatal(err)
					}
					q := res.WeightedMean(indicator)
					d := q - mean
					mean += d / float64(r+1)
					m2 += d * (q - mean)
				}
				repvar = m2 / float64(replicates-1)
			}
			b.ReportMetric(repvar*1e9, "nvar/est")
		})
	}
}

func benchNodeIDs(xs []int) []graph.NodeID {
	out := make([]graph.NodeID, len(xs))
	for i, x := range xs {
		out[i] = graph.NodeID(x)
	}
	return out
}

// BenchmarkPairConnectivity exercises the country-analysis trial loop
// (plan sampling + scratch union-find connectivity) end to end.
func BenchmarkPairConnectivity(b *testing.B) {
	w := benchWorld(b)
	an, err := core.NewAnalyzer(w)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.PairConnectivity(ctx, failure.S1(), 150, 50, 1, "us", "region:europe"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrosslayerTrialLoop measures cross-layer scoring — dead cables
// to severed AS pairs and stranded users — of pre-sampled trial blocks on
// the real submarine network and router catalog, in scalar and bitsliced
// 64-trial block form, at p=0.001 (the sweep's low-p end, same regime the
// sparse-sampler bench pins: a handful of whole-cable deaths per trial,
// where the block path replaces the per-trial union-find with one
// spanning-forest sweep; at high p nearly every edge dies per block and
// the two paths converge). Both paths must report 0 allocs/op, and
// `make bench-check` gates batched at ≥2× over scalar.
func BenchmarkCrosslayerTrialLoop(b *testing.B) {
	w := benchWorld(b)
	idx, err := crosslayer.Compile(w.Submarine, w.Routers, routing.DefaultDemands())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := failure.Compile(w.Submarine, failure.Uniform{P: 0.001}, 150)
	if err != nil {
		b.Fatal(err)
	}
	var batch failure.BatchScratch
	batch.Grow(plan)
	var s crosslayer.Scratch
	s.Grow(idx)
	scores := make([]crosslayer.Score, failure.MaxBatch)
	root := xrand.New(dataset.DefaultSeed)
	plan.SampleBatch(&batch, root, 0, failure.MaxBatch)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = idx.ScoreDead(batch.Row(i%failure.MaxBatch), &s)
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for t0 := 0; t0 < b.N; t0 += failure.MaxBatch {
			n := b.N - t0
			if n > failure.MaxBatch {
				n = failure.MaxBatch
			}
			idx.ScoreBatch(&batch, n, scores[:n], &s)
		}
	})
}
