// Country impact: reproduce the paper's §4.3.4 walkthrough for a handful
// of countries — which cables they keep under a severe storm and whether
// the key international relationships survive.
package main

import (
	"context"
	"fmt"
	"log"

	"gicnet"
)

func main() {
	log.SetFlags(0)

	world, err := gicnet.DefaultWorld()
	if err != nil {
		log.Fatal(err)
	}
	an, err := gicnet.NewAnalyzer(world)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	cases := []struct {
		target   gicnet.Target
		partners []gicnet.Target
		note     string
	}{
		{"us", []gicnet.Target{"region:europe", "br"}, "the paper's most exposed region"},
		{"sg", []gicnet.Target{"in", "au", "id"}, "the resilient Asian hub"},
		{"br", []gicnet.Target{"region:europe", "us"}, "keeps Europe via the short EllaLink"},
		{"city:shanghai", []gicnet.Target{"sg"}, "only very long cables land here"},
	}

	for _, c := range cases {
		rep, err := an.CountryAnalysis(ctx, gicnet.S1(), 150, 200, gicnet.DefaultSeed, c.target, c.partners)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s under S1 — %s ===\n", c.target, c.note)
		fmt.Printf("cables touching: %d, expected survivors: %.1f\n",
			len(rep.Cables), rep.ExpectedSurvivors)
		surviving := rep.SurvivingCables()
		show := surviving
		if len(show) > 5 {
			show = show[:5]
		}
		for _, cf := range show {
			fmt.Printf("  likely survivor: %-28s %6.0f km  p(dies)=%.2f\n",
				cf.Name, cf.LengthKm, cf.DeathProb)
		}
		for _, p := range rep.Partners {
			fmt.Printf("  p(connected to %-14s) = %.2f\n", p.To, p.SurvivalProb)
		}
		fmt.Println()
	}

	// Direct cables only (the paper's metric): Brazil-Europe vs US-Europe.
	brEU, err := an.DirectSurvival(gicnet.S1(), 150, "br", "region:europe")
	if err != nil {
		log.Fatal(err)
	}
	usEU, err := an.DirectSurvival(gicnet.S1(), 150, "us", "region:europe")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct-cable loss probability under S1: Brazil-Europe %.2f vs US-Europe %.2f\n",
		brEU.AllDeadProb, usEU.AllDeadProb)
	fmt.Println("(the Brazil-Portugal cable is 6,200 km; Florida-Portugal is 9,833 km — length is destiny)")
}
