// Traffic shift: the paper's §5.5 contrast between power grids and the
// Internet — grids fail regionally, but Internet load redistributes
// globally. Kill every cable landing in New York and watch transatlantic
// demand pile onto surviving systems.
package main

import (
	"fmt"
	"log"
	"strings"

	"gicnet"
)

func main() {
	log.SetFlags(0)

	world, err := gicnet.DefaultWorld()
	if err != nil {
		log.Fatal(err)
	}
	net := world.Submarine
	demands := gicnet.DefaultTrafficDemands()

	before, err := gicnet.RouteTraffic(net, demands, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("intact network: %.1f%% of demand routed\n", 100*(1-before.StrandedFrac()))

	// Kill every cable touching the New York area landing stations.
	var nyNodes []int
	for i, nd := range net.Nodes {
		if strings.Contains(nd.Name, "new-york") || strings.Contains(nd.Name, "long-island") ||
			strings.Contains(nd.Name, "wall-nj") {
			nyNodes = append(nyNodes, i)
		}
	}
	dead := make([]bool, len(net.Cables))
	killed := 0
	for _, ci := range net.CablesTouching(nyNodes) {
		dead[ci] = true
		killed++
	}
	fmt.Printf("failure scenario: %d cables landing in the New York area die\n\n", killed)

	after, err := gicnet.RouteTraffic(net, demands, dead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failure: %.1f%% of demand still routed (%.1f%% stranded)\n",
		100*(1-after.StrandedFrac()), 100*after.StrandedFrac())

	shifts, err := gicnet.CompareTrafficLoads(net, before, after)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncables that absorbed the diverted load:")
	for i, s := range shifts {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-28s load %.4f -> %.4f (%.1fx)\n", s.Cable, s.Before, s.After, s.Ratio())
	}
	fmt.Println("\nunlike a regional grid failure, the outage is felt on cables an")
	fmt.Println("ocean away — the Internet reroutes globally, and so does the strain.")
}
