// Shutdown planning: a CME has been observed leaving the sun. Use the
// transit lead time (§5.2) to schedule cable power-downs that maximise
// expected surviving capacity.
package main

import (
	"fmt"
	"log"

	"gicnet"
)

func main() {
	log.SetFlags(0)

	world, err := gicnet.DefaultWorld()
	if err != nil {
		log.Fatal(err)
	}

	for _, storm := range []gicnet.Storm{gicnet.Quebec, gicnet.NewYorkRailroad, gicnet.Carrington} {
		plan, err := gicnet.PlanShutdown(world.Submarine, storm, gicnet.DefaultShutdownOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== forecast: %s (lead time %.0f h, budget %d shutdowns) ===\n",
			storm.Name, plan.LeadTimeHours, plan.Budget)
		fmt.Printf("expected surviving cables, no action: %.1f / %d\n",
			plan.ExpectedSurvivorsUnplanned, len(world.Submarine.Cables))
		fmt.Printf("expected surviving cables, with plan: %.1f  (+%.1f saved)\n",
			plan.ExpectedSurvivorsPlanned, plan.Improvement())
		fmt.Printf("cables powered down: %d\n", plan.PowerOffCount())
		shown := 0
		for _, a := range plan.Actions {
			if !a.PowerOff || shown >= 5 {
				continue
			}
			fmt.Printf("  power off %-28s p(dies) %.2f -> %.2f\n", a.Cable, a.DeathOn, a.DeathOff)
			shown++
		}
		fmt.Println()
	}
	fmt.Println("note how the plan buys real capacity for the moderate storm but")
	fmt.Println("almost nothing at Carrington scale — GIC flows through powered-off")
	fmt.Println("cables, so powering down only removes the small operating current.")
}
