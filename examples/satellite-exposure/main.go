// Satellite exposure: the paper's §3.3 warns that LEO constellations face
// both electronics damage and storm-drag orbital decay. Assess a
// Starlink-class shell against the reference storm scenarios.
package main

import (
	"fmt"
	"log"

	"gicnet"
)

func main() {
	log.SetFlags(0)

	shell := gicnet.Starlink()
	fmt.Printf("constellation: %s — %d satellites at %.0f km, %.0f deg inclination\n\n",
		shell.Name, shell.Size(), shell.AltitudeKm, shell.InclinationDeg)

	for _, storm := range []gicnet.Storm{gicnet.ModerateStorm, gicnet.Quebec, gicnet.NewYorkRailroad, gicnet.Carrington} {
		exp, err := gicnet.AssessConstellation(shell, storm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", storm.Name)
		fmt.Printf("  electronics damage: p=%.3f per sat (%.0f expected losses)\n",
			exp.ElectronicsDamageProb, exp.DamagedExpected)
		fmt.Printf("  drag multiplier: %.1fx, decay %.2f km/day\n",
			exp.DragMultiplier, exp.DecayKmPerDay)
		fmt.Printf("  reentry risk: %v\n\n", exp.ReentryRisk)
	}

	// A freshly launched batch still at the 350 km insertion altitude is
	// far more exposed — the February 2022 Starlink loss scenario.
	fresh := shell
	fresh.Name = "freshly-launched-batch"
	fresh.AltitudeKm = 350
	exp, err := gicnet.AssessConstellation(fresh, gicnet.Carrington)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fresh batch at 350 km under Carrington: decay %.1f km/day, reentry risk: %v\n",
		exp.DecayKmPerDay, exp.ReentryRisk)
}
