// Recovery timeline: after a severe storm, how long until the submarine
// network is stitched back together? The paper warns outages could last
// months (§3.2.2): the global cable-ship fleet was sized for localized
// faults, not hundreds of simultaneous failures.
package main

import (
	"fmt"
	"log"

	"gicnet"
)

func main() {
	log.SetFlags(0)

	world, err := gicnet.DefaultWorld()
	if err != nil {
		log.Fatal(err)
	}

	// One severe-storm realisation.
	dead, err := gicnet.SampleStorm(world.Submarine, gicnet.S1(), 150, gicnet.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	deadCount := 0
	for _, d := range dead {
		if d {
			deadCount++
		}
	}
	fmt.Printf("storm outcome: %d of %d cables dead\n", deadCount, len(dead))

	faults, err := gicnet.SampleFaults(world.Submarine, dead, 150, 0.1, gicnet.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	repeaters := 0
	for _, f := range faults {
		repeaters += f.DamagedRepeaters
	}
	fmt.Printf("repair backlog: %d cable campaigns, %d damaged repeaters\n\n", len(faults), repeaters)

	sched, err := gicnet.PlanRecovery(world.Submarine, faults, gicnet.DefaultRepairFleet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d ships\n", len(gicnet.DefaultRepairFleet()))
	for _, m := range []float64{0.5, 0.9, 0.95, 1.0} {
		days := sched.RestoredAt[m]
		fmt.Printf("  %3.0f%% connectivity restored after %6.1f days (%.1f months)\n",
			100*m, days, days/30)
	}
	fmt.Printf("\nfirst repairs completed:\n")
	for i, e := range sched.Events {
		if i >= 5 {
			break
		}
		fmt.Printf("  day %5.1f  %-14s repaired %-24s (+%d landing points)\n",
			e.Done, e.Ship, e.Cable, e.NodesRestored)
	}
	fmt.Println("\nthe paper's warning quantified: with today's fleet, a severe storm")
	fmt.Println("means months of degraded intercontinental connectivity.")
}
