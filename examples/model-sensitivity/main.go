// Model sensitivity: the paper stresses that no accurate repeater failure
// model exists, so conclusions must hold across a *family* of models
// (§3.2.2). This example sweeps a scaling factor over the S1 state and
// overlays mundane background failures, showing which conclusions are
// robust to model uncertainty.
package main

import (
	"context"
	"fmt"
	"log"

	"gicnet"
)

func main() {
	log.SetFlags(0)

	world, err := gicnet.DefaultWorld()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	run := func(m gicnet.FailureModel) (sub, land float64) {
		rs, err := gicnet.Simulate(ctx, world.Submarine, gicnet.SimConfig{
			Model: m, SpacingKm: 150, Trials: 10, Seed: gicnet.DefaultSeed,
		})
		if err != nil {
			log.Fatal(err)
		}
		rl, err := gicnet.Simulate(ctx, world.Intertubes, gicnet.SimConfig{
			Model: m, SpacingKm: 150, Trials: 10, Seed: gicnet.DefaultSeed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rs.CableFrac.Mean(), rl.CableFrac.Mean()
	}

	fmt.Println("scaling the S1 state: does 'submarine >> land' survive model error?")
	fmt.Printf("%-8s %-22s %-18s %s\n", "factor", "submarine failed", "us-land failed", "ratio")
	for _, factor := range []float64{0.25, 0.5, 1.0, 1.5, 2.0} {
		m := gicnet.ScaledModel(gicnet.S1(), factor)
		sub, land := run(m)
		ratio := 0.0
		if land > 0 {
			ratio = sub / land
		}
		fmt.Printf("%-8.2f %-22s %-18s %.1fx\n", factor,
			fmt.Sprintf("%.1f%%", 100*sub), fmt.Sprintf("%.1f%%", 100*land), ratio)
	}

	fmt.Println("\noverlaying 0.5% mundane background failures on S2:")
	plainSub, _ := run(gicnet.S2())
	overlaidSub, _ := run(gicnet.OverlayModels(gicnet.S2(), gicnet.Uniform{P: 0.005}))
	fmt.Printf("  S2 alone: %.1f%%   S2 + background: %.1f%%\n", 100*plainSub, 100*overlaidSub)

	fmt.Println("\nworst-case envelope across the paper's model family (max of S1, S2):")
	envSub, envLand := run(gicnet.WorstOfModels(gicnet.S1(), gicnet.S2()))
	fmt.Printf("  submarine %.1f%%, us-land %.1f%%\n", 100*envSub, 100*envLand)
	fmt.Println("\nacross every variant the ordering holds: submarine cables dominate")
	fmt.Println("the risk — the paper's core conclusion is robust to model error.")
}
