// Quickstart: generate the calibrated world and measure how each cable
// network fares under the paper's S1 (severe) and S2 (moderate) storm
// states.
package main

import (
	"context"
	"fmt"
	"log"

	"gicnet"
)

func main() {
	log.SetFlags(0)

	world, err := gicnet.DefaultWorld()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d submarine landing points, %d submarine cables\n",
		len(world.Submarine.Nodes), len(world.Submarine.Cables))
	fmt.Printf("       %d US long-haul links, %d ITU land links\n\n",
		len(world.Intertubes.Cables), len(world.ITU.Cables))

	ctx := context.Background()
	for _, model := range []gicnet.FailureModel{gicnet.S1(), gicnet.S2()} {
		fmt.Printf("=== %s, 150 km repeater spacing, 10 trials ===\n", model.Name())
		for _, net := range world.Networks() {
			res, err := gicnet.Simulate(ctx, net, gicnet.SimConfig{
				Model:     model,
				SpacingKm: 150,
				Trials:    10,
				Seed:      gicnet.DefaultSeed,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s cables failed %5.1f%% (sd %.1f)   nodes unreachable %5.1f%%\n",
				net.Name,
				100*res.CableFrac.Mean(), 100*res.CableFrac.StdDev(),
				100*res.NodeFrac.Mean())
		}
		fmt.Println()
	}

	// The same analysis driven by a physical storm scenario instead of
	// the abstract S1/S2 vectors.
	model, err := gicnet.StormModel(gicnet.Carrington)
	if err != nil {
		log.Fatal(err)
	}
	res, err := gicnet.Simulate(ctx, world.Submarine, gicnet.SimConfig{
		Model: model, SpacingKm: 150, Trials: 10, Seed: gicnet.DefaultSeed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("physical %s: submarine cables failed %.1f%%\n",
		gicnet.Carrington.Name, 100*res.CableFrac.Mean())
}
