// Topology design: the paper's §5.1 guidance says to add capacity at low
// latitudes. Under a severe storm, New Zealand "loses all its long-distance
// connectivity except to Australia" (§4.3.4) — so this example asks the
// library which low-latitude bridge cables would best restore New Zealand's
// reach to the United States, then measures the improvement.
package main

import (
	"fmt"
	"log"

	"gicnet"
)

func main() {
	log.SetFlags(0)

	world, err := gicnet.DefaultWorld()
	if err != nil {
		log.Fatal(err)
	}

	const (
		spacing = 150.0
		trials  = 250
	)
	cands, err := gicnet.RecommendBridges(world, gicnet.S1(), spacing, trials,
		gicnet.DefaultSeed, 8, "nz", "us")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("candidate low-latitude bridges for New Zealand <-> US under S1:")
	fmt.Printf("%-16s %-16s %9s %12s %9s\n", "from", "to", "length", "p(survives)", "benefit")
	for _, c := range cands {
		fmt.Printf("%-16s %-16s %6.0f km %12.2f %+9.3f\n",
			c.From, c.To, c.LengthKm, c.SurvivalProb, c.Benefit)
	}

	if len(cands) > 0 && cands[0].Benefit > 0 {
		best := cands[0]
		fmt.Printf("\nbest candidate: a %s <-> %s cable (max |lat| %.1f deg)\n",
			best.From, best.To, best.MaxAbsLat)
		fmt.Printf("it would survive a severe storm with p=%.2f and improves\n", best.SurvivalProb)
		fmt.Printf("NZ-US survival by %+.3f — the paper's point exactly: southern,\n", best.Benefit)
		fmt.Println("low-latitude detours keep remote regions attached.")
	}
}
